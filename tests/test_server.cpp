// Unit tests: the network subsystem — wire codec round trips, hostile-frame
// rejection in the FrameDecoder and SessionBroker, and loopback end-to-end
// runs against a live epoll Server: framing-invariant verdicts, write-side
// backpressure, idle eviction + transparent revive, and graceful drain.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/server/server.hpp"
#include "qols/server/session_broker.hpp"
#include "qols/server/wire.hpp"
#include "qols/service/recognizer_service.hpp"
#include "qols/util/rng.hpp"
#include "qols/util/serde.hpp"

namespace {

namespace wire = qols::server::wire;
using qols::lang::LDisjInstance;
using qols::server::BrokerShared;
using qols::server::Server;
using qols::server::SessionBroker;
using qols::service::RecognizerKind;
using qols::service::RecognizerService;
using qols::service::RecognizerSpec;
using qols::stream::Symbol;
using qols::util::serde::DecodeError;

std::vector<Symbol> word_of(const LDisjInstance& inst) {
  std::vector<Symbol> out;
  auto s = inst.stream();
  while (auto sym = s->next()) out.push_back(*sym);
  return out;
}

/// The reference every wire verdict must match bit for bit.
struct DirectOutcome {
  bool accepted;
  bool fully_simulated;
  std::uint64_t classical_bits;
  std::uint64_t qubits;
};

DirectOutcome direct_run(const RecognizerSpec& spec, std::uint64_t seed,
                         const std::vector<Symbol>& word) {
  auto rec = spec.make(seed);
  rec->feed_chunk(word);
  DirectOutcome out{};
  out.accepted = rec->finish();
  out.fully_simulated = rec->fully_simulated();
  const auto space = rec->space_used();
  out.classical_bits = space.classical_bits;
  out.qubits = space.qubits;
  return out;
}

void expect_verdict_matches(const wire::WireVerdict& v,
                            const DirectOutcome& ref, const char* what) {
  EXPECT_EQ(v.accepted, ref.accepted) << what;
  EXPECT_EQ(v.fully_simulated, ref.fully_simulated) << what;
  EXPECT_EQ(v.classical_bits, ref.classical_bits) << what;
  EXPECT_EQ(v.qubits, ref.qubits) << what;
}

// ---------------------------------------------------------------------------
// A minimal blocking test client (the load generator is nonblocking and
// multi-connection; tests want something dumber and deterministic).

class TestClient {
 public:
  /// `rcvbuf` > 0 shrinks SO_RCVBUF before connecting (so the window is
  /// negotiated small) — the backpressure test uses it to keep the kernel
  /// from absorbing the server's responses on loopback.
  explicit TestClient(std::uint16_t port, int rcvbuf = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("socket() failed");
    if (rcvbuf > 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      throw std::runtime_error("connect() failed");
    }
  }
  ~TestClient() { close(); }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void send_all(std::span<const std::uint8_t> bytes) {
    std::size_t done = 0;
    while (done < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + done, bytes.size() - done, 0);
      ASSERT_GT(n, 0) << "send failed: " << std::strerror(errno);
      done += static_cast<std::size_t>(n);
    }
  }

  /// Blocks (with a 10 s guard) until one complete frame arrives.
  wire::Frame next_frame() {
    for (;;) {
      if (auto f = decoder_.next()) return *f;
      pollfd p{fd_, POLLIN, 0};
      const int r = ::poll(&p, 1, 10'000);
      if (r <= 0) throw std::runtime_error("next_frame: timeout");
      std::uint8_t buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) throw std::runtime_error("next_frame: connection closed");
      decoder_.append({buf, static_cast<std::size_t>(n)});
    }
  }

  /// True when the server closed the connection (EOF), draining any
  /// trailing bytes first.
  bool wait_eof() {
    for (;;) {
      pollfd p{fd_, POLLIN, 0};
      if (::poll(&p, 1, 10'000) <= 0) return false;
      std::uint8_t buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0) return false;
      decoder_.append({buf, static_cast<std::size_t>(n)});
    }
  }

  void hello() {
    std::vector<std::uint8_t> out;
    wire::append_hello(out, {});
    send_all(out);
    const auto f = next_frame();
    ASSERT_EQ(f.type, wire::FrameType::kHelloOk);
  }

  void open(std::uint64_t session, std::uint64_t seed) {
    std::vector<std::uint8_t> out;
    wire::append_open(out, {session, seed});
    send_all(out);
    const auto f = next_frame();
    ASSERT_EQ(f.type, wire::FrameType::kOpenOk);
    EXPECT_EQ(wire::read_open_ok(f.payload).session, session);
  }

  wire::WireVerdict finish(std::uint64_t session) {
    std::vector<std::uint8_t> out;
    wire::append_finish(out, {session});
    send_all(out);
    const auto f = next_frame();
    if (f.type != wire::FrameType::kVerdict) {
      throw std::runtime_error(std::string("finish: got ") +
                               wire::frame_type_name(f.type));
    }
    return wire::read_verdict(f.payload);
  }

  int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
  wire::FrameDecoder decoder_;
};

/// Runs server.run() on a worker thread for one test's lifetime.
class ServerRunner {
 public:
  explicit ServerRunner(const Server::Config& cfg)
      : server_(cfg), thread_([this] { server_.run(); }) {}
  ~ServerRunner() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      server_.shutdown();
      thread_.join();
    }
  }

  Server& server() noexcept { return server_; }
  std::uint16_t port() const noexcept { return server_.port(); }

 private:
  Server server_;
  std::thread thread_;
};

// ---------------------------------------------------------------------------
// Wire codec

TEST(WireCodec, RoundTripsEveryPayloadType) {
  std::vector<std::uint8_t> bytes;
  wire::append_hello(bytes, {wire::kProtocolVersion, 3});
  wire::append_hello_ok(bytes, {wire::kProtocolVersion, 4, true, 77});
  wire::append_open(bytes, {42, 0xdead'beef});
  wire::append_open_ok(bytes, {42});
  const std::vector<Symbol> syms = {Symbol::kOne, Symbol::kSep, Symbol::kZero};
  wire::append_feed(bytes, 42, syms);
  wire::append_finish(bytes, {42});
  wire::append_verdict(bytes, {42, true, false, 123, 9});
  wire::append_text(bytes, wire::FrameType::kStatsText, "{\"a\":1}");
  wire::append_error(bytes,
                     {wire::ErrorCode::kUnknownSession, 7, "no such id"});

  wire::FrameDecoder dec;
  dec.append(bytes);

  auto f = dec.next();
  ASSERT_TRUE(f && f->type == wire::FrameType::kHello);
  const auto hello = wire::read_hello(f->payload);
  EXPECT_EQ(hello.version, wire::kProtocolVersion);
  EXPECT_EQ(hello.kind_tag, 3);

  f = dec.next();
  ASSERT_TRUE(f && f->type == wire::FrameType::kHelloOk);
  const auto hok = wire::read_hello_ok(f->payload);
  EXPECT_EQ(hok.kind, 4);
  EXPECT_TRUE(hok.float_amplitudes);
  EXPECT_EQ(hok.max_sessions, 77u);

  f = dec.next();
  ASSERT_TRUE(f && f->type == wire::FrameType::kOpen);
  const auto open = wire::read_open(f->payload);
  EXPECT_EQ(open.session, 42u);
  EXPECT_EQ(open.seed, 0xdead'beefu);

  f = dec.next();
  ASSERT_TRUE(f && f->type == wire::FrameType::kOpenOk);
  EXPECT_EQ(wire::read_open_ok(f->payload).session, 42u);

  f = dec.next();
  ASSERT_TRUE(f && f->type == wire::FrameType::kFeed);
  const auto feed = wire::read_feed(f->payload);
  EXPECT_EQ(feed.session, 42u);
  ASSERT_EQ(feed.symbols.size(), syms.size());
  EXPECT_TRUE(std::equal(syms.begin(), syms.end(), feed.symbols.begin()));

  f = dec.next();
  ASSERT_TRUE(f && f->type == wire::FrameType::kFinish);
  EXPECT_EQ(wire::read_finish(f->payload).session, 42u);

  f = dec.next();
  ASSERT_TRUE(f && f->type == wire::FrameType::kVerdict);
  const auto v = wire::read_verdict(f->payload);
  EXPECT_EQ(v.session, 42u);
  EXPECT_TRUE(v.accepted);
  EXPECT_FALSE(v.fully_simulated);
  EXPECT_EQ(v.classical_bits, 123u);
  EXPECT_EQ(v.qubits, 9u);

  f = dec.next();
  ASSERT_TRUE(f && f->type == wire::FrameType::kStatsText);
  EXPECT_EQ(wire::read_text(f->payload), "{\"a\":1}");

  f = dec.next();
  ASSERT_TRUE(f && f->type == wire::FrameType::kError);
  const auto err = wire::read_error(f->payload);
  EXPECT_EQ(err.code, wire::ErrorCode::kUnknownSession);
  EXPECT_EQ(err.session, 7u);
  EXPECT_EQ(err.message, "no such id");

  EXPECT_FALSE(dec.next());
  EXPECT_EQ(dec.buffered_bytes(), 0u);
}

TEST(WireCodec, DecoderReassemblesByteByByte) {
  // The most adversarial legal framing: every byte arrives alone. Each
  // frame must complete exactly when its last byte lands.
  std::vector<std::uint8_t> bytes;
  wire::append_open(bytes, {1, 2});
  wire::append_finish(bytes, {1});
  wire::append_frame(bytes, wire::FrameType::kStats, {});

  wire::FrameDecoder dec;
  std::vector<wire::FrameType> seen;
  for (const std::uint8_t b : bytes) {
    dec.append({&b, 1});
    while (auto f = dec.next()) seen.push_back(f->type);
  }
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], wire::FrameType::kOpen);
  EXPECT_EQ(seen[1], wire::FrameType::kFinish);
  EXPECT_EQ(seen[2], wire::FrameType::kStats);
  EXPECT_EQ(dec.buffered_bytes(), 0u);
}

TEST(WireCodec, DecoderRejectsOversizedLengthPrefixBeforeAllocating) {
  // 0xffffffff payload length: hostile by definition. frame_available()
  // must say true (so callers reach the throwing next()) and next() must
  // throw instead of trying to buffer 4 GiB.
  const std::uint8_t hostile[] = {0xff, 0xff, 0xff, 0xff, 0x03};
  wire::FrameDecoder dec;
  dec.append(hostile);
  EXPECT_TRUE(dec.frame_available());
  EXPECT_THROW(dec.next(), DecodeError);
}

TEST(WireCodec, ReadersRejectTruncatedAndTrailingPayloads) {
  // Truncated OPEN (one u64 short) and an OPEN with trailing garbage: both
  // must throw, not read out of bounds or silently ignore bytes.
  std::vector<std::uint8_t> good;
  wire::append_open(good, {5, 6});
  const std::span<const std::uint8_t> payload(
      good.data() + wire::kFrameHeaderSize, good.size() - wire::kFrameHeaderSize);
  EXPECT_NO_THROW(wire::read_open(payload));
  EXPECT_THROW(wire::read_open(payload.subspan(0, payload.size() - 1)),
               DecodeError);
  std::vector<std::uint8_t> trailing(payload.begin(), payload.end());
  trailing.push_back(0);
  EXPECT_THROW(wire::read_open(trailing), DecodeError);
  EXPECT_THROW(wire::read_finish({}), DecodeError);
}

TEST(WireCodec, ReadFeedRejectsInvalidSymbolBytes) {
  std::vector<std::uint8_t> frame;
  wire::append_feed(frame, 1,
                    std::vector<Symbol>{Symbol::kZero, Symbol::kOne});
  std::span<std::uint8_t> payload(frame.data() + wire::kFrameHeaderSize,
                                  frame.size() - wire::kFrameHeaderSize);
  EXPECT_NO_THROW(wire::read_feed(payload));
  payload[8] = 0x03;  // first symbol byte: > kSep
  EXPECT_THROW(wire::read_feed(payload), DecodeError);
}

// ---------------------------------------------------------------------------
// SessionBroker (socket-free): hostile frames produce typed errors, never
// crashes; recoverable errors leave the connection alive.

struct BrokerFixture {
  RecognizerService svc;
  BrokerShared shared;
  SessionBroker broker;
  std::vector<std::uint8_t> out;

  static RecognizerService::Config service_config() {
    RecognizerService::Config cfg;
    cfg.spec.kind = RecognizerKind::kClassicalBlock;
    return cfg;
  }

  explicit BrokerFixture(BrokerShared::Options opts = {})
      : svc(service_config()), shared(svc, opts), broker(shared) {}

  SessionBroker::PumpResult feed_bytes(std::span<const std::uint8_t> bytes) {
    broker.ingest(bytes);
    return broker.pump(out, std::size_t{1} << 24);
  }

  /// Decodes every response frame accumulated so far and clears the buffer.
  std::vector<std::pair<wire::FrameType, std::vector<std::uint8_t>>>
  drain_responses() {
    wire::FrameDecoder dec;
    dec.append(out);
    out.clear();
    std::vector<std::pair<wire::FrameType, std::vector<std::uint8_t>>> frames;
    while (auto f = dec.next()) {
      frames.emplace_back(
          f->type, std::vector<std::uint8_t>(f->payload.begin(),
                                             f->payload.end()));
    }
    EXPECT_EQ(dec.buffered_bytes(), 0u);
    return frames;
  }

  void do_hello() {
    std::vector<std::uint8_t> bytes;
    wire::append_hello(bytes, {});
    ASSERT_EQ(feed_bytes(bytes), SessionBroker::PumpResult::kIdle);
    const auto frames = drain_responses();
    ASSERT_EQ(frames.size(), 1u);
    ASSERT_EQ(frames[0].first, wire::FrameType::kHelloOk);
  }
};

/// Asserts the (single) response is an ERROR frame with `code`.
void expect_error(BrokerFixture& fx, wire::ErrorCode code) {
  const auto frames = fx.drain_responses();
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(frames[0].first, wire::FrameType::kError);
  EXPECT_EQ(wire::read_error(frames[0].second).code, code);
}

TEST(SessionBroker, RejectsFramesBeforeHello) {
  BrokerFixture fx;
  std::vector<std::uint8_t> bytes;
  wire::append_open(bytes, {1, 1});
  EXPECT_EQ(fx.feed_bytes(bytes), SessionBroker::PumpResult::kClose);
  expect_error(fx, wire::ErrorCode::kProtocolError);
  EXPECT_TRUE(fx.broker.closed());
}

TEST(SessionBroker, RejectsWrongProtocolVersion) {
  BrokerFixture fx;
  std::vector<std::uint8_t> bytes;
  wire::append_hello(bytes, {wire::kProtocolVersion + 1, wire::kAnyKind});
  EXPECT_EQ(fx.feed_bytes(bytes), SessionBroker::PumpResult::kClose);
  expect_error(fx, wire::ErrorCode::kBadVersion);
}

TEST(SessionBroker, RejectsKindMismatch) {
  BrokerFixture fx;  // serves classical-block
  std::vector<std::uint8_t> bytes;
  wire::append_hello(
      bytes, {wire::kProtocolVersion,
              static_cast<std::uint8_t>(RecognizerKind::kQuantum)});
  EXPECT_EQ(fx.feed_bytes(bytes), SessionBroker::PumpResult::kClose);
  expect_error(fx, wire::ErrorCode::kSpecMismatch);
}

TEST(SessionBroker, RejectsDuplicateHello) {
  BrokerFixture fx;
  fx.do_hello();
  std::vector<std::uint8_t> bytes;
  wire::append_hello(bytes, {});
  EXPECT_EQ(fx.feed_bytes(bytes), SessionBroker::PumpResult::kClose);
  expect_error(fx, wire::ErrorCode::kProtocolError);
}

TEST(SessionBroker, RejectsUnknownFrameType) {
  BrokerFixture fx;
  fx.do_hello();
  std::vector<std::uint8_t> bytes;
  wire::append_frame(bytes, static_cast<wire::FrameType>(0x55), {});
  EXPECT_EQ(fx.feed_bytes(bytes), SessionBroker::PumpResult::kClose);
  expect_error(fx, wire::ErrorCode::kProtocolError);
}

TEST(SessionBroker, RejectsServerToClientFrameFromClient) {
  BrokerFixture fx;
  fx.do_hello();
  std::vector<std::uint8_t> bytes;
  wire::append_verdict(bytes, {1, true, true, 0, 0});
  EXPECT_EQ(fx.feed_bytes(bytes), SessionBroker::PumpResult::kClose);
  expect_error(fx, wire::ErrorCode::kProtocolError);
}

TEST(SessionBroker, RejectsTruncatedOpenPayload) {
  BrokerFixture fx;
  fx.do_hello();
  // A hand-built OPEN frame with a 12-byte payload (needs 16).
  std::vector<std::uint8_t> bytes = {12, 0, 0, 0,
                                     static_cast<std::uint8_t>(
                                         wire::FrameType::kOpen)};
  bytes.resize(bytes.size() + 12, 0);
  EXPECT_EQ(fx.feed_bytes(bytes), SessionBroker::PumpResult::kClose);
  expect_error(fx, wire::ErrorCode::kMalformedFrame);
}

TEST(SessionBroker, RejectsInvalidFeedSymbolByte) {
  BrokerFixture fx;
  fx.do_hello();
  std::vector<std::uint8_t> open;
  wire::append_open(open, {1, 1});
  fx.feed_bytes(open);
  fx.drain_responses();
  std::vector<std::uint8_t> feed;
  wire::append_feed(feed, 1, std::vector<Symbol>{Symbol::kZero});
  feed[wire::kFrameHeaderSize + 8] = 0x09;  // not a Symbol
  EXPECT_EQ(fx.feed_bytes(feed), SessionBroker::PumpResult::kClose);
  expect_error(fx, wire::ErrorCode::kMalformedFrame);
}

TEST(SessionBroker, RejectsOversizedLengthPrefix) {
  BrokerFixture fx;
  fx.do_hello();
  const std::uint8_t hostile[] = {0xff, 0xff, 0xff, 0x7f, 0x03};
  EXPECT_EQ(fx.feed_bytes(hostile), SessionBroker::PumpResult::kClose);
  expect_error(fx, wire::ErrorCode::kMalformedFrame);
}

TEST(SessionBroker, RejectsStatsWithPayload) {
  BrokerFixture fx;
  fx.do_hello();
  const std::uint8_t junk[1] = {0};
  std::vector<std::uint8_t> bytes;
  wire::append_frame(bytes, wire::FrameType::kStats, junk);
  EXPECT_EQ(fx.feed_bytes(bytes), SessionBroker::PumpResult::kClose);
  expect_error(fx, wire::ErrorCode::kMalformedFrame);
}

TEST(SessionBroker, UnknownSessionErrorsAreRecoverable) {
  BrokerFixture fx;
  fx.do_hello();
  std::vector<std::uint8_t> bytes;
  wire::append_feed(bytes, 99, std::vector<Symbol>{Symbol::kOne});
  wire::append_finish(bytes, {99});
  EXPECT_EQ(fx.feed_bytes(bytes), SessionBroker::PumpResult::kIdle);
  const auto frames = fx.drain_responses();
  ASSERT_EQ(frames.size(), 2u);
  for (const auto& [type, payload] : frames) {
    ASSERT_EQ(type, wire::FrameType::kError);
    const auto err = wire::read_error(payload);
    EXPECT_EQ(err.code, wire::ErrorCode::kUnknownSession);
    EXPECT_EQ(err.session, 99u);
  }
  EXPECT_FALSE(fx.broker.closed());  // the connection lives on

  // ... and a session opened afterwards works normally.
  std::vector<std::uint8_t> open;
  wire::append_open(open, {1, 1});
  fx.feed_bytes(open);
  const auto ok = fx.drain_responses();
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_EQ(ok[0].first, wire::FrameType::kOpenOk);
}

TEST(SessionBroker, DuplicateOpenIsRecoverable) {
  BrokerFixture fx;
  fx.do_hello();
  std::vector<std::uint8_t> bytes;
  wire::append_open(bytes, {7, 1});
  wire::append_open(bytes, {7, 2});
  EXPECT_EQ(fx.feed_bytes(bytes), SessionBroker::PumpResult::kIdle);
  const auto frames = fx.drain_responses();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].first, wire::FrameType::kOpenOk);
  ASSERT_EQ(frames[1].first, wire::FrameType::kError);
  EXPECT_EQ(wire::read_error(frames[1].second).code,
            wire::ErrorCode::kSessionExists);
  EXPECT_FALSE(fx.broker.closed());
}

TEST(SessionBroker, SessionLimitIsEnforced) {
  BrokerFixture fx({.max_sessions = 2});
  fx.do_hello();
  std::vector<std::uint8_t> bytes;
  wire::append_open(bytes, {1, 1});
  wire::append_open(bytes, {2, 1});
  wire::append_open(bytes, {3, 1});
  EXPECT_EQ(fx.feed_bytes(bytes), SessionBroker::PumpResult::kIdle);
  const auto frames = fx.drain_responses();
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].first, wire::FrameType::kOpenOk);
  EXPECT_EQ(frames[1].first, wire::FrameType::kOpenOk);
  ASSERT_EQ(frames[2].first, wire::FrameType::kError);
  EXPECT_EQ(wire::read_error(frames[2].second).code,
            wire::ErrorCode::kOverLimit);
  EXPECT_FALSE(fx.broker.closed());
}

TEST(SessionBroker, DrainingRefusesOpenButServesFeedAndFinish) {
  qols::util::Rng rng(31);
  const auto word = word_of(LDisjInstance::make_disjoint(2, rng));
  BrokerFixture fx;
  fx.do_hello();
  std::vector<std::uint8_t> open;
  wire::append_open(open, {1, 5});
  fx.feed_bytes(open);
  fx.drain_responses();

  fx.shared.draining = true;
  std::vector<std::uint8_t> bytes;
  wire::append_open(bytes, {2, 5});
  wire::append_feed(bytes, 1, word);
  wire::append_finish(bytes, {1});
  EXPECT_EQ(fx.feed_bytes(bytes), SessionBroker::PumpResult::kIdle);
  const auto frames = fx.drain_responses();
  ASSERT_EQ(frames.size(), 2u);
  ASSERT_EQ(frames[0].first, wire::FrameType::kError);
  EXPECT_EQ(wire::read_error(frames[0].second).code,
            wire::ErrorCode::kDraining);
  ASSERT_EQ(frames[1].first, wire::FrameType::kVerdict);
  const auto v = wire::read_verdict(frames[1].second);
  RecognizerSpec spec;
  spec.kind = RecognizerKind::kClassicalBlock;
  expect_verdict_matches(v, direct_run(spec, 5, word), "drained finish");
}

TEST(SessionBroker, OutputBudgetParksFramesForTheNextPump) {
  BrokerFixture fx;
  fx.do_hello();
  // Ten STATS probes; each response is far larger than the 1-byte budget,
  // so the first pump emits one frame and parks the rest.
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 10; ++i) {
    wire::append_frame(bytes, wire::FrameType::kStats, {});
  }
  fx.broker.ingest(bytes);
  ASSERT_EQ(fx.broker.pump(fx.out, 1), SessionBroker::PumpResult::kOutBudget);
  EXPECT_TRUE(fx.broker.has_buffered_frames());
  const std::size_t first = fx.drain_responses().size();
  EXPECT_EQ(first, 1u);
  // A budget-less pump drains the remaining nine.
  ASSERT_EQ(fx.broker.pump(fx.out, std::size_t{1} << 24),
            SessionBroker::PumpResult::kIdle);
  EXPECT_EQ(fx.drain_responses().size(), 9u);
  EXPECT_FALSE(fx.broker.has_buffered_frames());
}

// ---------------------------------------------------------------------------
// Loopback end-to-end against a live Server.

// ---------------------------------------------------------------------------
// RESUME (wire v2): adopting sessions a dropped connection left behind.

TEST(SessionBroker, HelloEchoesClientVersionAndV1StillServes) {
  BrokerFixture fx;
  std::vector<std::uint8_t> bytes;
  wire::append_hello(bytes, {1, wire::kAnyKind});  // a v1 client
  ASSERT_EQ(fx.feed_bytes(bytes), SessionBroker::PumpResult::kIdle);
  auto frames = fx.drain_responses();
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(frames[0].first, wire::FrameType::kHelloOk);
  // The server echoes the CLIENT's version: the conversation proceeds at
  // the lower of the two, and the client needs no version table.
  EXPECT_EQ(wire::read_hello_ok(frames[0].second).version, 1u);
  EXPECT_EQ(fx.broker.negotiated_version(), 1u);

  // The v1 lifecycle is untouched.
  bytes.clear();
  wire::append_open(bytes, {1, 3});
  wire::append_finish(bytes, {1});
  ASSERT_EQ(fx.feed_bytes(bytes), SessionBroker::PumpResult::kIdle);
  frames = fx.drain_responses();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].first, wire::FrameType::kOpenOk);
  EXPECT_EQ(frames[1].first, wire::FrameType::kVerdict);
}

TEST(SessionBroker, ResumeRequiresNegotiatedV2) {
  BrokerFixture fx;
  std::vector<std::uint8_t> bytes;
  wire::append_hello(bytes, {1, wire::kAnyKind});
  ASSERT_EQ(fx.feed_bytes(bytes), SessionBroker::PumpResult::kIdle);
  fx.drain_responses();
  bytes.clear();
  wire::append_resume(bytes, {1});
  EXPECT_EQ(fx.feed_bytes(bytes), SessionBroker::PumpResult::kClose);
  expect_error(fx, wire::ErrorCode::kProtocolError);
}

TEST(SessionBroker, ResumeUnknownSessionIsRecoverable) {
  BrokerFixture fx;
  fx.do_hello();
  std::vector<std::uint8_t> bytes;
  wire::append_resume(bytes, {42});
  EXPECT_EQ(fx.feed_bytes(bytes), SessionBroker::PumpResult::kIdle);
  expect_error(fx, wire::ErrorCode::kUnknownSession);
  EXPECT_FALSE(fx.broker.closed());
}

TEST(SessionBroker, ResumeOfOwnedSessionsIsNotResumable) {
  BrokerShared::Options opts;
  opts.preserve_on_disconnect = true;
  BrokerFixture fx(opts);
  fx.do_hello();
  std::vector<std::uint8_t> bytes;
  wire::append_open(bytes, {1, 7});
  ASSERT_EQ(fx.feed_bytes(bytes), SessionBroker::PumpResult::kIdle);
  fx.drain_responses();

  // Resuming a session THIS connection already drives is refused...
  bytes.clear();
  wire::append_resume(bytes, {1});
  EXPECT_EQ(fx.feed_bytes(bytes), SessionBroker::PumpResult::kIdle);
  expect_error(fx, wire::ErrorCode::kNotResumable);

  // ...and so is one owned by ANOTHER live connection: two connections
  // driving one recognizer would interleave nondeterministically.
  SessionBroker other(fx.shared);
  std::vector<std::uint8_t> other_out;
  bytes.clear();
  wire::append_hello(bytes, {});
  wire::append_resume(bytes, {1});
  other.ingest(bytes);
  EXPECT_EQ(other.pump(other_out, std::size_t{1} << 24),
            SessionBroker::PumpResult::kIdle);
  wire::FrameDecoder dec;
  dec.append(other_out);
  auto hello_ok = dec.next();
  ASSERT_TRUE(hello_ok && hello_ok->type == wire::FrameType::kHelloOk);
  auto err = dec.next();
  ASSERT_TRUE(err && err->type == wire::FrameType::kError);
  EXPECT_EQ(wire::read_error(err->payload).code,
            wire::ErrorCode::kNotResumable);

  // The refused RESUME left the owner untouched: it still finishes.
  bytes.clear();
  wire::append_finish(bytes, {1});
  ASSERT_EQ(fx.feed_bytes(bytes), SessionBroker::PumpResult::kIdle);
  const auto frames = fx.drain_responses();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].first, wire::FrameType::kVerdict);
}

TEST(SessionBroker, ResumeAdoptsAReleasedSessionWithExactVerdict) {
  qols::util::Rng rng(55);
  const auto word = word_of(LDisjInstance::make_disjoint(1, rng));
  const std::size_t half = word.size() / 2;

  BrokerShared::Options opts;
  opts.preserve_on_disconnect = true;
  BrokerFixture fx(opts);
  {
    // The first connection: open, feed half, vanish without finishing.
    SessionBroker first(fx.shared);
    std::vector<std::uint8_t> bytes, out;
    wire::append_hello(bytes, {});
    wire::append_open(bytes, {1, 9});
    wire::append_feed(bytes, 1, std::span<const Symbol>(word.data(), half));
    first.ingest(bytes);
    ASSERT_EQ(first.pump(out, std::size_t{1} << 24),
              SessionBroker::PumpResult::kIdle);
  }  // dtor releases (not finishes) the session for a later RESUME

  fx.do_hello();
  std::vector<std::uint8_t> bytes;
  wire::append_resume(bytes, {1});
  wire::append_feed(bytes, 1,
                    std::span<const Symbol>(word.data() + half,
                                            word.size() - half));
  wire::append_finish(bytes, {1});
  ASSERT_EQ(fx.feed_bytes(bytes), SessionBroker::PumpResult::kIdle);
  const auto frames = fx.drain_responses();
  ASSERT_EQ(frames.size(), 2u);
  ASSERT_EQ(frames[0].first, wire::FrameType::kResumeOk);
  EXPECT_EQ(wire::read_resume_ok(frames[0].second).session, 1u);
  ASSERT_EQ(frames[1].first, wire::FrameType::kVerdict);
  expect_verdict_matches(wire::read_verdict(frames[1].second),
                         direct_run(BrokerFixture::service_config().spec, 9,
                                    word),
                         "resumed session");
}

TEST(ServerLoopback, RaggedByteSplitsReproduceRunStream) {
  qols::util::Rng rng(17);
  const auto member = LDisjInstance::make_disjoint(2, rng);
  const auto crossing = LDisjInstance::make_with_intersections(2, 1, rng);

  Server::Config cfg;
  cfg.spec.kind = RecognizerKind::kClassicalBlock;
  ServerRunner runner(cfg);

  // Two sessions, FEEDs interleaved, the whole byte stream delivered at
  // awkward seeded sizes that never align with frame boundaries.
  const std::vector<Symbol> words[2] = {word_of(member), word_of(crossing)};
  std::vector<std::uint8_t> script;
  wire::append_hello(script, {});
  wire::append_open(script, {1, 11});
  wire::append_open(script, {2, 12});
  qols::util::SplitMix64 sm(99);
  std::size_t cursors[2] = {0, 0};
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (int s = 0; s < 2; ++s) {
      if (cursors[s] >= words[s].size()) continue;
      const std::size_t n = std::min<std::size_t>(
          1 + sm.next() % 61, words[s].size() - cursors[s]);
      wire::append_feed(script, static_cast<std::uint64_t>(s + 1),
                        std::span<const Symbol>(words[s].data() + cursors[s],
                                                n));
      cursors[s] += n;
      progressed = true;
    }
  }
  wire::append_finish(script, {2});
  wire::append_finish(script, {1});

  TestClient client(runner.port());
  std::size_t done = 0;
  while (done < script.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + sm.next() % 173, script.size() - done);
    client.send_all({script.data() + done, n});
    done += n;
  }
  const auto hello_ok = client.next_frame();
  ASSERT_EQ(hello_ok.type, wire::FrameType::kHelloOk);
  ASSERT_EQ(client.next_frame().type, wire::FrameType::kOpenOk);
  ASSERT_EQ(client.next_frame().type, wire::FrameType::kOpenOk);
  const auto f2 = client.next_frame();
  ASSERT_EQ(f2.type, wire::FrameType::kVerdict);
  const auto v2 = wire::read_verdict(f2.payload);
  const auto f1 = client.next_frame();
  ASSERT_EQ(f1.type, wire::FrameType::kVerdict);
  const auto v1 = wire::read_verdict(f1.payload);
  EXPECT_EQ(v1.session, 1u);
  EXPECT_EQ(v2.session, 2u);
  expect_verdict_matches(v1, direct_run(cfg.spec, 11, words[0]), "member");
  expect_verdict_matches(v2, direct_run(cfg.spec, 12, words[1]), "crossing");
}

TEST(ServerLoopback, MalformedFrameGetsTypedErrorThenClose) {
  Server::Config cfg;
  cfg.spec.kind = RecognizerKind::kClassicalBlock;
  ServerRunner runner(cfg);

  TestClient client(runner.port());
  client.hello();
  const std::uint8_t hostile[] = {0xff, 0xff, 0xff, 0xff, 0x03};
  client.send_all(hostile);
  const auto f = client.next_frame();
  ASSERT_EQ(f.type, wire::FrameType::kError);
  EXPECT_EQ(wire::read_error(f.payload).code,
            wire::ErrorCode::kMalformedFrame);
  EXPECT_TRUE(client.wait_eof());
}

TEST(ServerLoopback, BackpressurePausesReadsAndRecovers) {
  Server::Config cfg;
  cfg.spec.kind = RecognizerKind::kClassicalBlock;
  cfg.write_buffer_cap = 2048;  // tiny: a handful of STATS texts fills it
  cfg.so_sndbuf = 4096;  // and a tiny kernel send buffer under it
  ServerRunner runner(cfg);

  // A tiny receive window to match: between the pinned SO_SNDBUF and this,
  // the kernel can absorb only ~15 KB end to end, so the server's send()
  // hits EAGAIN within the first few dozen responses no matter how fast or
  // slow this machine is (the TSan job runs this test too).
  TestClient client(runner.port(), 4096);
  client.hello();
  // Flood STATS probes without reading a byte. Each response is several
  // hundred bytes, so the server's write buffer crosses the cap and the
  // loop must stop reading this connection instead of buffering without
  // bound — then recover once we drain.
  constexpr int kProbes = 2000;
  std::vector<std::uint8_t> probes;
  for (int i = 0; i < kProbes; ++i) {
    wire::append_frame(probes, wire::FrameType::kStats, {});
  }
  client.send_all(probes);
  // Sit on our hands: the server churns through the probes while nobody
  // reads, so its responses fill the (tiny) kernel buffers until send()
  // returns EAGAIN and the write buffer crosses the cap. Reading right
  // away would drain at loopback speed and never apply any pressure.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  // Now read every response; the server resumes as the socket drains.
  for (int i = 0; i < kProbes; ++i) {
    const auto f = client.next_frame();
    ASSERT_EQ(f.type, wire::FrameType::kStatsText) << "probe " << i;
  }
  client.close();
  runner.stop();
  EXPECT_GT(runner.server().counters().backpressure_pauses, 0u);
}

TEST(ServerLoopback, IdleSessionsEvictAndReviveTransparently) {
  qols::util::Rng rng(23);
  const auto word = word_of(LDisjInstance::make_disjoint(2, rng));

  Server::Config cfg;
  cfg.spec.kind = RecognizerKind::kClassicalBlock;
  cfg.idle_evict_ms = 30;
  cfg.sweep_interval_ms = 10;
  ServerRunner runner(cfg);

  TestClient client(runner.port());
  client.hello();
  client.open(1, 77);
  const std::size_t half = word.size() / 2;
  std::vector<std::uint8_t> bytes;
  wire::append_feed(bytes, 1, std::span<const Symbol>(word.data(), half));
  client.send_all(bytes);
  // Idle long enough for several sweeps to pass the eviction cutoff.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  bytes.clear();
  wire::append_feed(
      bytes, 1, std::span<const Symbol>(word.data() + half,
                                        word.size() - half));
  client.send_all(bytes);
  const auto v = client.finish(1);
  expect_verdict_matches(v, direct_run(cfg.spec, 77, word), "revived");
  client.close();
  runner.stop();
  EXPECT_GT(runner.server().counters().idle_evictions, 0u);
}

TEST(ServerLoopback, GracefulDrainFinishesInFlightSessions) {
  qols::util::Rng rng(41);
  const auto word = word_of(LDisjInstance::make_disjoint(2, rng));

  Server::Config cfg;
  cfg.spec.kind = RecognizerKind::kClassicalBlock;
  Server server(cfg);
  std::thread loop([&] { server.run(); });

  TestClient client(server.port());
  client.hello();
  client.open(1, 13);
  const std::size_t half = word.size() / 2;
  std::vector<std::uint8_t> bytes;
  wire::append_feed(bytes, 1, std::span<const Symbol>(word.data(), half));
  client.send_all(bytes);

  // Drain begins mid-session: new OPENs are refused, the in-flight session
  // still completes with the exact single-stream verdict. (The shutdown
  // wake travels over an eventfd; give the loop a beat to observe it
  // before the OPEN races in over TCP.)
  server.shutdown();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  bytes.clear();
  wire::append_open(bytes, {2, 1});
  client.send_all(bytes);
  const auto refusal = client.next_frame();
  ASSERT_EQ(refusal.type, wire::FrameType::kError);
  EXPECT_EQ(wire::read_error(refusal.payload).code,
            wire::ErrorCode::kDraining);

  bytes.clear();
  wire::append_feed(
      bytes, 1, std::span<const Symbol>(word.data() + half,
                                        word.size() - half));
  client.send_all(bytes);
  const auto v = client.finish(1);
  expect_verdict_matches(v, direct_run(cfg.spec, 13, word), "drained");

  // With its last session finished, the server closes the connection and
  // run() returns — the drain completed without abandoning anything.
  EXPECT_TRUE(client.wait_eof());
  loop.join();
  EXPECT_EQ(server.counters().sessions_abandoned, 0u);
  EXPECT_EQ(server.counters().connections_closed,
            server.counters().connections_accepted);
}

TEST(ServerLoopback, NewConnectionsAreRefusedWhileDraining) {
  Server::Config cfg;
  cfg.spec.kind = RecognizerKind::kClassicalBlock;
  Server server(cfg);
  std::thread loop([&] { server.run(); });
  {
    // Hold a connection open so the drain cannot finish instantly.
    TestClient holder(server.port());
    holder.hello();
    server.shutdown();
    // The listen socket closes on drain: a fresh connect must fail or be
    // reset rather than be served. (Loopback connects may still complete in
    // the backlog race, so accept either failure mode: refused connect or
    // immediate EOF.)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    bool refused = false;
    try {
      TestClient late(server.port());
      refused = late.wait_eof();
    } catch (const std::runtime_error&) {
      refused = true;
    }
    EXPECT_TRUE(refused);
    holder.close();
  }
  loop.join();
}

TEST(ServerLoopback, DurableRestartResumesWithExactVerdicts) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("qols-test-server-restart-" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  qols::util::Rng rng(7);
  const std::vector<Symbol> words[2] = {
      word_of(LDisjInstance::make_disjoint(2, rng)),
      word_of(LDisjInstance::make_with_intersections(2, 1, rng)),
  };

  Server::Config cfg;
  cfg.spec.kind = RecognizerKind::kClassicalBlock;
  cfg.spill_dir = dir.string();
  cfg.durable = true;
  cfg.persist_on_shutdown = true;

  {
    // Incarnation one: open two sessions, feed half of each, then shut down
    // mid-word. persist_on_shutdown checkpoints them instead of finishing.
    Server server(cfg);
    std::thread loop([&] { server.run(); });
    TestClient client(server.port());
    client.hello();
    std::vector<std::uint8_t> bytes;
    for (std::uint64_t s = 0; s < 2; ++s) {
      client.open(s + 1, 100 + s);
      bytes.clear();
      wire::append_feed(bytes, s + 1,
                        std::span<const Symbol>(words[s].data(),
                                                words[s].size() / 2));
      client.send_all(bytes);
    }
    // A STATS round trip proves both FEEDs reached the service before the
    // drain starts (frames are handled strictly in order).
    bytes.clear();
    wire::append_frame(bytes, wire::FrameType::kStats, {});
    client.send_all(bytes);
    ASSERT_EQ(client.next_frame().type, wire::FrameType::kStatsText);

    client.close();
    server.shutdown();
    loop.join();
    EXPECT_EQ(server.counters().sessions_persisted, 2u);
  }

  {
    // Incarnation two over the same spill_dir: the constructor replays the
    // manifest, RESUME re-adopts each session, and the finished verdicts
    // are bit-identical to uninterrupted single-process runs.
    Server server(cfg);
    EXPECT_EQ(server.counters().sessions_recovered, 2u);
    std::thread loop([&] { server.run(); });
    TestClient client(server.port());
    client.hello();
    for (std::uint64_t s = 0; s < 2; ++s) {
      std::vector<std::uint8_t> bytes;
      wire::append_resume(bytes, {s + 1});
      client.send_all(bytes);
      const auto f = client.next_frame();
      ASSERT_EQ(f.type, wire::FrameType::kResumeOk);
      EXPECT_EQ(wire::read_resume_ok(f.payload).session, s + 1);
      bytes.clear();
      const std::size_t half = words[s].size() / 2;
      wire::append_feed(bytes, s + 1,
                        std::span<const Symbol>(words[s].data() + half,
                                                words[s].size() - half));
      client.send_all(bytes);
      const auto v = client.finish(s + 1);
      expect_verdict_matches(v, direct_run(cfg.spec, 100 + s, words[s]),
                             s == 0 ? "resumed member" : "resumed crossing");
    }
    client.close();
    server.shutdown();
    loop.join();
    // Everything finished this time: nothing is left to persist.
    EXPECT_EQ(server.counters().sessions_persisted, 0u);
  }
  fs::remove_all(dir);
}

}  // namespace
