// Unit tests: the RecognizerService serving layer — session lifecycle,
// interleaved ingestion, out-of-order finish, error handling, and the
// determinism contract (service verdicts == single-stream run_stream).
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/service/recognizer_service.hpp"
#include "qols/stream/symbol_stream.hpp"
#include "qols/util/thread_pool.hpp"

namespace {

using qols::lang::LDisjInstance;
using qols::service::RecognizerKind;
using qols::service::RecognizerService;
using qols::service::RecognizerSpec;
using qols::stream::Symbol;

std::vector<Symbol> word_of(const LDisjInstance& inst) {
  std::vector<Symbol> out;
  auto s = inst.stream();
  while (auto sym = s->next()) out.push_back(*sym);
  return out;
}

/// Feeds `word` to the session in chunks of `chunk` symbols.
void feed_all(RecognizerService& svc, RecognizerService::SessionId id,
              const std::vector<Symbol>& word, std::size_t chunk) {
  for (std::size_t i = 0; i < word.size(); i += chunk) {
    const std::size_t n = std::min(chunk, word.size() - i);
    svc.feed(id, std::span<const Symbol>(word.data() + i, n));
  }
}

TEST(RecognizerSpec, MakesEveryKindWithMatchingName) {
  for (const RecognizerKind kind :
       {RecognizerKind::kClassicalBlock, RecognizerKind::kClassicalFull,
        RecognizerKind::kClassicalSampling, RecognizerKind::kClassicalBloom,
        RecognizerKind::kQuantum}) {
    RecognizerSpec spec;
    spec.kind = kind;
    auto rec = spec.make(1);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->name(), qols::service::recognizer_kind_name(kind));
  }
}

TEST(RecognizerSpec, UnknownQuantumBackendThrowsAtServiceConstruction) {
  RecognizerService::Config cfg;
  cfg.spec.kind = RecognizerKind::kQuantum;
  cfg.spec.backend = "no-such-backend";
  EXPECT_THROW(RecognizerService svc(cfg), std::invalid_argument);
}

TEST(RecognizerSpec, ExplicitBackendIdsConstruct) {
  for (const char* backend : {"dense", "structured", "auto", ""}) {
    RecognizerSpec spec;
    spec.kind = RecognizerKind::kQuantum;
    spec.backend = backend;
    EXPECT_NE(spec.make(1), nullptr) << backend;
  }
}

TEST(RecognizerSpec, UnknownKindThrowsInsteadOfUndefinedBehavior) {
  // Future/corrupted enum values must fail loudly in both switch consumers.
  const auto bogus = static_cast<RecognizerKind>(250);
  RecognizerSpec spec;
  spec.kind = bogus;
  EXPECT_THROW(spec.make(1), std::invalid_argument);
  EXPECT_THROW(qols::service::recognizer_kind_name(bogus),
               std::invalid_argument);
  RecognizerService::Config cfg;
  cfg.spec.kind = bogus;
  EXPECT_THROW(RecognizerService svc(cfg), std::invalid_argument);
}

TEST(RecognizerSpec, SamplingBudgetExtremes) {
  qols::util::Rng rng(55);
  const auto member = LDisjInstance::make_disjoint(2, rng);
  const auto word = word_of(member);
  // budget 0: samples nothing, so it can never find an intersection — a
  // member must still be accepted (A1/A2 alone decide).
  // budget 1 and a budget far above m: both must run to completion with
  // exact member acceptance and a monotonically larger space report.
  std::uint64_t last_bits = 0;
  for (const std::uint64_t budget : {std::uint64_t{0}, std::uint64_t{1},
                                     std::uint64_t{1} << 12}) {
    RecognizerSpec spec;
    spec.kind = RecognizerKind::kClassicalSampling;
    spec.sampling_budget = budget;
    auto rec = spec.make(3);
    for (const Symbol s : word) rec->feed(s);
    EXPECT_TRUE(rec->finish()) << "budget=" << budget;
    const auto bits = rec->space_used().classical_bits;
    EXPECT_GT(bits, last_bits) << "budget=" << budget;
    last_bits = bits;
  }
}

TEST(RecognizerSpec, BloomFilterBitExtremes) {
  qols::util::Rng rng(66);
  const auto crossing = LDisjInstance::make_with_intersections(2, 1, rng);
  const auto word = word_of(crossing);
  // 0 bits: the hash range would be empty — rejected at construction, which
  // the service surfaces before any session opens.
  {
    RecognizerSpec spec;
    spec.kind = RecognizerKind::kClassicalBloom;
    spec.bloom_filter_bits = 0;
    EXPECT_THROW(spec.make(1), std::invalid_argument);
    RecognizerService::Config cfg;
    cfg.spec = spec;
    EXPECT_THROW(RecognizerService svc(cfg), std::invalid_argument);
  }
  // 1 bit (everything collides) and a filter far above m: legal geometries.
  // Bloom filters have no false negatives, so the intersecting word is
  // rejected at every size.
  for (const std::uint64_t bits : {std::uint64_t{1}, std::uint64_t{1} << 12}) {
    RecognizerSpec spec;
    spec.kind = RecognizerKind::kClassicalBloom;
    spec.bloom_filter_bits = bits;
    auto rec = spec.make(4);
    for (const Symbol s : word) rec->feed(s);
    EXPECT_FALSE(rec->finish()) << "bits=" << bits;
  }
  // 0 hash functions: the all-hashes-present probe is vacuously true, so
  // the filter claims every index — any word whose y has a 1-bit is
  // rejected (the degenerate "always maybe-present" Bloom filter).
  {
    RecognizerSpec spec;
    spec.kind = RecognizerKind::kClassicalBloom;
    spec.bloom_num_hashes = 0;
    auto rec = spec.make(5);
    for (const Symbol s : word) rec->feed(s);
    EXPECT_FALSE(rec->finish());
  }
}

TEST(RecognizerService, SingleSessionMatchesRunStream) {
  qols::util::Rng rng(11);
  for (const std::uint64_t t : {std::uint64_t{0}, std::uint64_t{1}}) {
    const auto inst = LDisjInstance::make_with_intersections(3, t, rng);
    const auto word = word_of(inst);
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      RecognizerService svc({.spec = {.kind = RecognizerKind::kClassicalBlock}});
      const auto id = svc.open(seed);
      feed_all(svc, id, word, 100);
      const auto verdict = svc.finish(id);

      RecognizerSpec spec;
      auto reference = spec.make(seed);
      auto s = inst.stream();
      const bool expect = qols::machine::run_stream(*s, *reference);
      EXPECT_EQ(verdict.accepted, expect) << "t=" << t << " seed=" << seed;
      EXPECT_TRUE(verdict.fully_simulated);
      EXPECT_EQ(verdict.space.classical_bits,
                reference->space_used().classical_bits);
    }
  }
}

TEST(RecognizerService, InterleavedSessionsKeepStreamsApart) {
  // Many sessions, chunks interleaved round-robin with different chunk
  // sizes per session — verdicts must be exactly the single-stream ones.
  qols::util::Rng rng(22);
  const auto member = LDisjInstance::make_disjoint(3, rng);
  const auto nonmember = LDisjInstance::make_with_intersections(3, 2, rng);
  const auto member_word = word_of(member);
  const auto nonmember_word = word_of(nonmember);

  qols::util::ThreadPool pool(4);  // explicit: exercise real parallelism
  RecognizerService::Config cfg;
  cfg.spec.kind = RecognizerKind::kClassicalBlock;
  cfg.pool = &pool;
  cfg.flush_threshold = 1000;  // force many pooled flushes
  RecognizerService svc(cfg);

  const std::size_t num_sessions = 12;
  std::vector<RecognizerService::SessionId> ids;
  std::vector<std::size_t> cursors(num_sessions, 0);
  for (std::size_t s = 0; s < num_sessions; ++s) ids.push_back(svc.open(s));
  EXPECT_EQ(svc.open_sessions(), num_sessions);

  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t s = 0; s < num_sessions; ++s) {
      const auto& word = (s % 2 == 0) ? member_word : nonmember_word;
      if (cursors[s] >= word.size()) continue;
      const std::size_t chunk = 37 + 11 * s;  // ragged, per-session sizes
      const std::size_t n = std::min(chunk, word.size() - cursors[s]);
      svc.feed(ids[s], std::span<const Symbol>(word.data() + cursors[s], n));
      cursors[s] += n;
      progressed = true;
    }
  }

  // Finish out of order: odd sessions (non-members) first, then evens.
  for (std::size_t s = 1; s < num_sessions; s += 2) {
    EXPECT_FALSE(svc.finish(ids[s]).accepted) << "session " << s;
  }
  for (std::size_t s = 0; s < num_sessions; s += 2) {
    EXPECT_TRUE(svc.finish(ids[s]).accepted) << "session " << s;
  }
  EXPECT_EQ(svc.open_sessions(), 0u);
  EXPECT_EQ(svc.stats().sessions_finished, num_sessions);
  EXPECT_EQ(svc.stats().symbols_ingested,
            (member_word.size() + nonmember_word.size()) * num_sessions / 2);
}

TEST(RecognizerService, UnknownAndFinishedSessionsThrow) {
  RecognizerService svc({.spec = {.kind = RecognizerKind::kClassicalBlock}});
  const Symbol one = Symbol::kOne;
  EXPECT_THROW(svc.feed(42, std::span<const Symbol>(&one, 1)),
               std::out_of_range);
  EXPECT_THROW(svc.finish(42), std::out_of_range);
  const auto id = svc.open(1);
  svc.finish(id);  // retires the session
  EXPECT_THROW(svc.feed(id, std::span<const Symbol>(&one, 1)),
               std::out_of_range);
  EXPECT_THROW(svc.finish(id), std::out_of_range);
}

TEST(RecognizerService, VerdictsAreDeterministicUnderThePool) {
  // Same seeds, same words, different flush thresholds and pool sizes:
  // identical verdict vectors. Quantum recognizers make this bite — their
  // decisions consume RNG state fixed by the session seed.
  qols::util::Rng rng(33);
  const auto inst = LDisjInstance::make_with_intersections(2, 1, rng);
  const auto word = word_of(inst);
  const std::size_t num_sessions = 8;

  const auto serve = [&](std::size_t pool_threads,
                         std::uint64_t threshold) {
    qols::util::ThreadPool pool(pool_threads);
    RecognizerService::Config cfg;
    cfg.spec.kind = RecognizerKind::kQuantum;
    cfg.pool = &pool;
    cfg.flush_threshold = threshold;
    RecognizerService svc(cfg);
    std::vector<RecognizerService::SessionId> ids;
    for (std::size_t s = 0; s < num_sessions; ++s) {
      ids.push_back(svc.open(100 + s));
    }
    for (std::size_t s = 0; s < num_sessions; ++s) {
      feed_all(svc, ids[s], word, 61 + s);
    }
    std::vector<bool> verdicts;
    for (const auto id : ids) verdicts.push_back(svc.finish(id).accepted);
    return verdicts;
  };

  const auto reference = serve(1, 50);
  EXPECT_EQ(serve(4, 50), reference);
  EXPECT_EQ(serve(4, 1 << 20), reference);  // one big drain at finish
  EXPECT_EQ(serve(2, 0), reference);        // flush on every feed
}

TEST(RecognizerService, EvictThenFeedRevivesTransparently) {
  // Every kind with a snapshot codec: evict mid-word, keep feeding, and the
  // verdict must equal the uninterrupted single-stream run exactly.
  qols::util::Rng rng(70);
  const auto inst = LDisjInstance::make_disjoint(2, rng);
  const auto word = word_of(inst);
  const std::size_t cut = word.size() / 2;
  for (const RecognizerKind kind :
       {RecognizerKind::kClassicalBlock, RecognizerKind::kClassicalFull,
        RecognizerKind::kClassicalSampling, RecognizerKind::kClassicalBloom,
        RecognizerKind::kQuantum}) {
    RecognizerService svc({.spec = {.kind = kind}});
    const auto id = svc.open(17);
    svc.feed(id, std::span<const Symbol>(word.data(), cut));
    svc.evict(id);
    EXPECT_TRUE(svc.evicted(id));
    svc.evict(id);  // double-evict is a no-op
    EXPECT_TRUE(svc.evicted(id));
    svc.feed(id, std::span<const Symbol>(word.data() + cut,
                                         word.size() - cut));
    EXPECT_FALSE(svc.evicted(id));  // the feed revived it
    const auto verdict = svc.finish(id);

    RecognizerSpec spec;
    spec.kind = kind;
    auto reference = spec.make(17);
    reference->feed_chunk(word);
    EXPECT_EQ(verdict.accepted, reference->finish())
        << qols::service::recognizer_kind_name(kind);
    EXPECT_EQ(verdict.space.classical_bits,
              reference->space_used().classical_bits);
    EXPECT_EQ(verdict.space.qubits, reference->space_used().qubits);
  }
}

TEST(RecognizerService, ExplicitReviveAndFinishWhileEvicted) {
  qols::util::Rng rng(71);
  const auto inst = LDisjInstance::make_with_intersections(2, 1, rng);
  const auto word = word_of(inst);
  RecognizerService svc({.spec = {.kind = RecognizerKind::kClassicalBlock}});
  const auto a = svc.open(1);
  const auto b = svc.open(2);
  svc.feed(a, word);
  svc.feed(b, word);
  svc.evict(a);
  svc.evict(b);
  svc.revive(a);
  EXPECT_FALSE(svc.evicted(a));
  svc.revive(a);  // revive when resident is a no-op
  // finish() revives on its own; both paths give the single-stream verdict.
  RecognizerSpec spec;
  auto ref = spec.make(1);
  ref->feed_chunk(word);
  const bool expect = ref->finish();
  EXPECT_EQ(svc.finish(a).accepted, expect);
  EXPECT_EQ(svc.finish(b).accepted, expect);
}

TEST(RecognizerService, EvictUnknownOrFinishedThrows) {
  RecognizerService svc({.spec = {.kind = RecognizerKind::kClassicalBlock}});
  EXPECT_THROW(svc.evict(42), std::out_of_range);
  EXPECT_THROW(svc.revive(42), std::out_of_range);
  EXPECT_THROW(svc.evicted(42), std::out_of_range);
  const auto id = svc.open(1);
  svc.finish(id);
  EXPECT_THROW(svc.evict(id), std::out_of_range);
  EXPECT_THROW(svc.revive(id), std::out_of_range);
}

TEST(RecognizerService, SpillFilesAreCleanedUp) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() /
                   ("qols-test-spill-" + std::to_string(::getpid()));
  qols::util::Rng rng(72);
  const auto inst = LDisjInstance::make_disjoint(1, rng);
  const auto word = word_of(inst);
  {
    RecognizerService::Config cfg;
    cfg.spec.kind = RecognizerKind::kClassicalBlock;
    cfg.spill_dir = dir.string();
    RecognizerService svc(cfg);
    const auto a = svc.open(1);
    const auto b = svc.open(2);
    svc.feed(a, word);
    svc.feed(b, word);
    svc.evict(a);
    svc.evict(b);
    EXPECT_EQ(std::distance(fs::directory_iterator(dir),
                            fs::directory_iterator()), 2);
    // finish() removes the revived session's spill file...
    svc.finish(a);
    EXPECT_EQ(std::distance(fs::directory_iterator(dir),
                            fs::directory_iterator()), 1);
    // ...and the destructor sweeps whatever was still evicted.
  }
  EXPECT_EQ(std::distance(fs::directory_iterator(dir),
                          fs::directory_iterator()), 0);
  fs::remove_all(dir);
}

TEST(RecognizerService, VerdictsSurviveEvictionSchedulesAndPoolSizes) {
  // The determinism contract extended to eviction: any evict/revive schedule
  // on any pool size yields verdict vectors bit-identical to the plain run.
  qols::util::Rng rng(73);
  const auto inst = LDisjInstance::make_with_intersections(2, 1, rng);
  const auto word = word_of(inst);
  const std::size_t num_sessions = 6;

  const auto serve = [&](std::size_t pool_threads, unsigned evict_stride) {
    qols::util::ThreadPool pool(pool_threads);
    RecognizerService::Config cfg;
    cfg.spec.kind = RecognizerKind::kQuantum;
    cfg.pool = &pool;
    cfg.flush_threshold = 128;
    RecognizerService svc(cfg);
    std::vector<RecognizerService::SessionId> ids;
    for (std::size_t s = 0; s < num_sessions; ++s) {
      ids.push_back(svc.open(300 + s));
    }
    std::vector<std::size_t> cursors(num_sessions, 0);
    unsigned lap = 0;
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (std::size_t s = 0; s < num_sessions; ++s) {
        if (cursors[s] >= word.size()) continue;
        const std::size_t n =
            std::min<std::size_t>(53 + 7 * s, word.size() - cursors[s]);
        svc.feed(ids[s],
                 std::span<const Symbol>(word.data() + cursors[s], n));
        cursors[s] += n;
        progressed = true;
      }
      if (evict_stride != 0 && ++lap % evict_stride == 0) {
        for (std::size_t s = 0; s < num_sessions; s += 2) {
          svc.evict(ids[s]);
        }
      }
    }
    std::vector<bool> verdicts;
    for (const auto id : ids) verdicts.push_back(svc.finish(id).accepted);
    return verdicts;
  };

  const auto reference = serve(1, 0);  // no eviction at all
  EXPECT_EQ(serve(1, 1), reference);   // evict half the fleet every lap
  EXPECT_EQ(serve(4, 1), reference);
  EXPECT_EQ(serve(4, 3), reference);
  EXPECT_EQ(serve(2, 2), reference);
}

TEST(RecognizerService, FeedBorrowedMatchesFeed) {
  // The zero-copy path interleaved with the buffering one, mid-session:
  // order within the session must hold and the verdict must be unchanged.
  qols::util::Rng rng(74);
  const auto inst = LDisjInstance::make_disjoint(2, rng);
  const auto word = word_of(inst);
  for (const RecognizerKind kind :
       {RecognizerKind::kClassicalBlock, RecognizerKind::kQuantum}) {
    RecognizerService svc({.spec = {.kind = kind}});
    const auto id = svc.open(21);
    std::size_t done = 0;
    bool borrow = true;
    while (done < word.size()) {
      const std::size_t n = std::min<std::size_t>(97, word.size() - done);
      const std::span<const Symbol> chunk(word.data() + done, n);
      if (borrow) {
        svc.feed_borrowed(id, chunk);
      } else {
        svc.feed(id, chunk);
      }
      borrow = !borrow;
      done += n;
    }
    const auto verdict = svc.finish(id);
    RecognizerSpec spec;
    spec.kind = kind;
    auto reference = spec.make(21);
    reference->feed_chunk(word);
    EXPECT_EQ(verdict.accepted, reference->finish())
        << qols::service::recognizer_kind_name(kind);
  }
}

TEST(RecognizerService, StatsCountFlushesAndThroughput) {
  RecognizerService::Config cfg;
  cfg.spec.kind = RecognizerKind::kClassicalBlock;
  cfg.flush_threshold = 64;
  RecognizerService svc(cfg);
  qols::util::Rng rng(44);
  const auto inst = LDisjInstance::make_disjoint(2, rng);
  const auto word = word_of(inst);
  const auto id = svc.open(9);
  feed_all(svc, id, word, 64);  // every full chunk crosses the threshold
  EXPECT_GE(svc.stats().flushes, word.size() / 64);
  // Only the sub-threshold tail may remain buffered; finish() drains it.
  EXPECT_EQ(svc.buffered_symbols(), word.size() % 64);
  svc.finish(id);
  EXPECT_EQ(svc.buffered_symbols(), 0u);
  EXPECT_EQ(svc.stats().symbols_ingested, word.size());
  EXPECT_GT(svc.stats().symbols_per_second(), 0.0);
  EXPECT_GT(svc.stats().sessions_per_second(), 0.0);
}

TEST(RecognizerService, OpenAtClaimsCallerChosenIdsAndAutoOpenSkipsThem) {
  RecognizerService svc({.spec = {.kind = RecognizerKind::kClassicalBlock}});
  // Claim the ids the auto-assigner would hand out next; open() must step
  // over every one of them instead of colliding.
  const auto a = svc.open_at(1, 10);
  const auto b = svc.open_at(2, 11);
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  const auto c = svc.open(12);
  EXPECT_NE(c, a);
  EXPECT_NE(c, b);
  EXPECT_EQ(svc.open_sessions(), 3u);
  svc.finish(a);
  svc.finish(b);
  svc.finish(c);
}

TEST(RecognizerService, OpenAtRejectsResidentAndEvictedIdsUntilFinish) {
  RecognizerService svc({.spec = {.kind = RecognizerKind::kClassicalBlock}});
  qols::util::Rng rng(55);
  const auto word = word_of(LDisjInstance::make_disjoint(2, rng));

  svc.open_at(7, 21);
  EXPECT_THROW(svc.open_at(7, 99), std::invalid_argument);  // resident

  svc.feed(7, std::span<const Symbol>(word.data(), word.size() / 2));
  svc.evict(7);
  ASSERT_TRUE(svc.evicted(7));
  // Evicted is still open: the id names live (spilled) session state.
  EXPECT_THROW(svc.open_at(7, 99), std::invalid_argument);

  svc.feed(7, std::span<const Symbol>(word.data() + word.size() / 2,
                                      word.size() - word.size() / 2));
  const auto first = svc.finish(7);

  // The id-reuse rule: reusable the moment finish() retires it. The reused
  // session is a fresh recognizer — same seed, same word, same verdict.
  const auto id = svc.open_at(7, 21);
  EXPECT_EQ(id, 7u);
  svc.feed(7, word);
  EXPECT_EQ(svc.finish(7).accepted, first.accepted);
}

TEST(RecognizerService, StatsSnapshotsAndResetRaceFreeWithFeeds) {
  // stats() and reset_stats() are documented safe against a running feed
  // path (per-field atomics, no torn whole-struct writes). Hammer them from
  // a second thread while sessions churn; TSan (the ThreadSanitizer CI job
  // runs this binary) is the real assertion — the checks below just keep
  // the compiler honest about using the snapshots.
  RecognizerService::Config cfg;
  cfg.spec.kind = RecognizerKind::kClassicalBlock;
  cfg.flush_threshold = 32;  // force pool flushes mid-feed
  RecognizerService svc(cfg);
  qols::util::Rng rng(66);
  const auto word = word_of(LDisjInstance::make_disjoint(2, rng));

  std::atomic<bool> done{false};
  std::uint64_t observed = 0;
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const auto snap = svc.stats();
      observed = std::max(observed, snap.symbols_ingested);
      svc.reset_stats();
    }
  });
  for (int round = 0; round < 50; ++round) {
    const auto id = svc.open(static_cast<std::uint64_t>(round));
    feed_all(svc, id, word, 48);
    svc.finish(id);
  }
  done.store(true, std::memory_order_relaxed);
  reader.join();
  // Post-join reads are ordinary: whatever survived the resets is sane.
  EXPECT_LE(svc.stats().symbols_ingested, 50 * word.size());
  EXPECT_LE(observed, 50 * word.size());
}

TEST(RecognizerService, MigrateEdgeCasesAndCounters) {
  qols::util::ThreadPool pool(4);
  RecognizerService::Config cfg;
  cfg.spec.kind = RecognizerKind::kClassicalBlock;
  cfg.pool = &pool;
  RecognizerService svc(cfg);
  qols::util::Rng rng(81);
  const auto word = word_of(LDisjInstance::make_disjoint(1, rng));

  const auto id = svc.open(5);  // id 1 -> shard 1 of 4
  svc.feed(id, word);
  EXPECT_THROW(svc.migrate(999, 0), std::out_of_range);
  EXPECT_THROW(svc.migrate(id, 4), std::invalid_argument);  // shard range

  svc.migrate(id, 1);  // same-shard move: a no-op, counters untouched
  EXPECT_EQ(svc.stats().migrations, 0u);
  EXPECT_EQ(svc.stats().evictions, 0u);

  svc.migrate(id, 3);  // resident: moves by the evict->revive path
  EXPECT_EQ(svc.shard_of(id), 3u);
  EXPECT_FALSE(svc.evicted(id));
  EXPECT_EQ(svc.stats().migrations, 1u);
  EXPECT_EQ(svc.stats().evictions, 1u);
  EXPECT_EQ(svc.stats().revives, 1u);

  svc.evict(id);
  svc.migrate(id, 0);  // evicted: a pure pin change, no spill round-trip
  EXPECT_EQ(svc.shard_of(id), 0u);
  EXPECT_TRUE(svc.evicted(id));
  EXPECT_EQ(svc.stats().migrations, 2u);
  EXPECT_EQ(svc.stats().evictions, 2u);
  EXPECT_EQ(svc.stats().revives, 1u);

  // The moves must not have cost a single symbol: the verdict still matches
  // a plain run.
  RecognizerSpec spec;
  spec.kind = RecognizerKind::kClassicalBlock;
  auto reference = spec.make(5);
  reference->feed_chunk(word);
  EXPECT_EQ(svc.finish(id).accepted, reference->finish());
  EXPECT_THROW(svc.migrate(id, 2), std::out_of_range);  // finished id
}

TEST(RecognizerService, MigrationVerdictsExactAcrossPoolSizes) {
  qols::util::Rng rng(82);
  const auto inst = LDisjInstance::make_with_intersections(2, 1, rng);
  const auto word = word_of(inst);
  const std::size_t num_sessions = 5;

  const auto serve = [&](std::size_t pool_threads, bool migrate_every_lap) {
    qols::util::ThreadPool pool(pool_threads);
    RecognizerService::Config cfg;
    cfg.spec.kind = RecognizerKind::kQuantum;
    cfg.pool = &pool;
    RecognizerService svc(cfg);
    std::vector<RecognizerService::SessionId> ids;
    for (std::size_t s = 0; s < num_sessions; ++s) {
      ids.push_back(svc.open(700 + s));
    }
    std::vector<std::size_t> cursors(num_sessions, 0);
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (std::size_t s = 0; s < num_sessions; ++s) {
        if (cursors[s] >= word.size()) continue;
        const std::size_t n =
            std::min<std::size_t>(61 + 5 * s, word.size() - cursors[s]);
        svc.feed(ids[s],
                 std::span<const Symbol>(word.data() + cursors[s], n));
        cursors[s] += n;
        progressed = true;
        if (migrate_every_lap && pool_threads > 1) {
          svc.migrate(ids[s], (svc.shard_of(ids[s]) + 1) % pool_threads);
        }
      }
    }
    std::vector<bool> verdicts;
    for (const auto id : ids) verdicts.push_back(svc.finish(id).accepted);
    return verdicts;
  };

  const auto reference = serve(1, false);
  EXPECT_EQ(serve(2, true), reference);
  EXPECT_EQ(serve(4, true), reference);
}

TEST(RecognizerService, RebalanceEvensShardLoadDeterministically) {
  qols::util::ThreadPool pool(2);
  RecognizerService::Config cfg;
  cfg.spec.kind = RecognizerKind::kClassicalBlock;
  cfg.pool = &pool;
  RecognizerService svc(cfg);
  // Pile four sessions onto shard 0 (even ids) against one on shard 1.
  for (const std::uint64_t id : {2, 4, 6, 8}) svc.open_at(id, id);
  svc.open_at(1, 1);
  EXPECT_EQ(svc.rebalance(0), 0u);  // max_moves is respected
  const auto moves = svc.rebalance();
  EXPECT_EQ(moves, 1u);  // 4 vs 1 -> 3 vs 2; another move would just swap
  // Deterministic pick: the smallest id on the hot shard.
  EXPECT_EQ(svc.shard_of(2), 1u);
  EXPECT_EQ(svc.stats().migrations, 1u);
  EXPECT_EQ(svc.rebalance(), 0u);  // already balanced
}

TEST(RecognizerService, RecoveredSessionsCounterExactAcrossPoolSizes) {
  namespace fs = std::filesystem;
  qols::util::Rng rng(83);
  const auto word = word_of(LDisjInstance::make_disjoint(1, rng));
  const std::size_t num_sessions = 5;

  // References from plain runs.
  std::vector<bool> reference;
  for (std::size_t s = 0; s < num_sessions; ++s) {
    RecognizerSpec spec;
    spec.kind = RecognizerKind::kClassicalBlock;
    auto rec = spec.make(900 + s);
    rec->feed_chunk(word);
    reference.push_back(rec->finish());
  }

  // Persist under a 4-shard pool, recover under 1, 2, and 4: the manifest's
  // shard pins fold into whatever pool the restarted process has, and the
  // recovered_sessions counter is exact every time.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    const auto dir = fs::temp_directory_path() /
                     ("qols-test-recover-pool-" + std::to_string(::getpid()) +
                      "-" + std::to_string(threads));
    fs::create_directories(dir);
    std::vector<RecognizerService::SessionId> ids;
    {
      qols::util::ThreadPool pool(4);
      RecognizerService::Config cfg;
      cfg.spec.kind = RecognizerKind::kClassicalBlock;
      cfg.pool = &pool;
      cfg.spill_dir = dir.string();
      cfg.durable = true;
      RecognizerService svc(cfg);
      for (std::size_t s = 0; s < num_sessions; ++s) {
        ids.push_back(svc.open(900 + s));
        svc.feed(ids.back(), word);
      }
      EXPECT_EQ(svc.persist(), num_sessions);
    }
    qols::util::ThreadPool pool(threads);
    RecognizerService::Config cfg;
    cfg.spec.kind = RecognizerKind::kClassicalBlock;
    cfg.pool = &pool;
    cfg.spill_dir = dir.string();
    cfg.durable = true;
    RecognizerService svc(cfg);
    const auto report = svc.recover();
    EXPECT_EQ(report.sessions_recovered, num_sessions) << threads;
    EXPECT_EQ(svc.stats().recovered_sessions, num_sessions) << threads;
    EXPECT_TRUE(report.lost.empty());
    for (std::size_t s = 0; s < num_sessions; ++s) {
      EXPECT_LT(svc.shard_of(ids[s]), threads);  // folded into this pool
      EXPECT_EQ(svc.finish(ids[s]).accepted, reference[s]) << threads;
    }
    fs::remove_all(dir);
  }
}

TEST(RecognizerService, EvictAndEvictedRaceFreeWithPoolFlushes) {
  // The PR 7 gap: evict()/evicted() read session state that pool workers
  // mutate mid-flush. The per-shard slot locks close it; TSan (the
  // ThreadSanitizer CI job runs this binary) is the real assertion, the
  // verdict checks below keep the interleaving honest. The side thread only
  // touches sessions the feeder never feeds during the race — feed()'s own
  // evicted-check is acceptor-state, not covered by the slot locks.
  qols::util::ThreadPool pool(4);
  RecognizerService::Config cfg;
  cfg.spec.kind = RecognizerKind::kClassicalBlock;
  cfg.pool = &pool;
  cfg.flush_threshold = 64;  // pooled drains fire constantly
  RecognizerService svc(cfg);
  qols::util::Rng rng(84);
  const auto word = word_of(LDisjInstance::make_disjoint(2, rng));

  std::vector<RecognizerService::SessionId> fed_ids, parked_ids;
  for (int s = 0; s < 4; ++s) fed_ids.push_back(svc.open(30 + s));
  for (int s = 0; s < 4; ++s) parked_ids.push_back(svc.open(40 + s));
  const std::size_t parked_prefix = word.size() / 2;
  for (const auto id : parked_ids) {
    svc.feed(id, std::span<const Symbol>(word.data(), parked_prefix));
  }
  svc.flush();  // parked sessions' symbols are all consumed before the race

  std::atomic<bool> done{false};
  std::thread side([&] {
    while (!done.load(std::memory_order_relaxed)) {
      for (const auto id : parked_ids) {
        (void)svc.evicted(id);
        svc.evict(id);
        svc.revive(id);
      }
    }
  });
  std::vector<std::size_t> cursors(fed_ids.size(), 0);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t s = 0; s < fed_ids.size(); ++s) {
      if (cursors[s] >= word.size()) continue;
      const std::size_t n =
          std::min<std::size_t>(96, word.size() - cursors[s]);
      svc.feed(fed_ids[s],
               std::span<const Symbol>(word.data() + cursors[s], n));
      cursors[s] += n;
      progressed = true;
    }
  }
  done.store(true, std::memory_order_relaxed);
  side.join();

  for (const auto id : parked_ids) {
    svc.feed(id, std::span<const Symbol>(word.data() + parked_prefix,
                                         word.size() - parked_prefix));
  }
  RecognizerSpec spec;
  spec.kind = RecognizerKind::kClassicalBlock;
  for (std::size_t s = 0; s < fed_ids.size(); ++s) {
    auto reference = spec.make(30 + s);
    reference->feed_chunk(word);
    EXPECT_EQ(svc.finish(fed_ids[s]).accepted, reference->finish());
  }
  for (std::size_t s = 0; s < parked_ids.size(); ++s) {
    auto reference = spec.make(40 + s);
    reference->feed_chunk(word);
    EXPECT_EQ(svc.finish(parked_ids[s]).accepted, reference->finish());
  }
}

}  // namespace
