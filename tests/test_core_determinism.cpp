// Reproducibility and option-wiring tests for the core machines: identical
// seeds must give identical behaviour (the whole experiment suite depends
// on this), and the recognizer-level gate-sink option must produce a
// replayable Definition 2.3 tape.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "qols/core/classical_recognizers.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/gates/builder.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/quantum/circuit.hpp"

namespace {

using qols::core::QuantumOnlineRecognizer;
using qols::lang::LDisjInstance;
using qols::machine::run_stream;
using qols::util::Rng;

TEST(Determinism, SameSeedSameVerdictSequence) {
  Rng rng(1);
  auto inst = LDisjInstance::make_with_intersections(2, 1, rng);
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    QuantumOnlineRecognizer a(seed), b(seed);
    auto sa = inst.stream();
    auto sb = inst.stream();
    ASSERT_EQ(run_stream(*sa, a), run_stream(*sb, b)) << "seed " << seed;
  }
}

TEST(Determinism, SameSeedSameChosenJAndPoint) {
  Rng rng(2);
  auto inst = LDisjInstance::make_disjoint(3, rng);
  QuantumOnlineRecognizer a(99), b(99);
  auto sa = inst.stream();
  auto sb = inst.stream();
  while (auto s = sa->next()) a.feed(*s);
  while (auto s = sb->next()) b.feed(*s);
  EXPECT_EQ(a.a3().chosen_j(), b.a3().chosen_j());
  EXPECT_EQ(a.a2().point(), b.a2().point());
  EXPECT_EQ(a.a2().prime(), b.a2().prime());
}

TEST(Determinism, DifferentSeedsVaryTheCoins) {
  Rng rng(3);
  auto inst = LDisjInstance::make_disjoint(4, rng);  // 2^k = 16 possible j's
  std::set<std::uint64_t> js;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    QuantumOnlineRecognizer rec(seed);
    auto s = inst.stream();
    while (auto sym = s->next()) rec.feed(*sym);
    js.insert(*rec.a3().chosen_j());
  }
  EXPECT_GE(js.size(), 6u);  // coins genuinely vary across seeds
}

TEST(Determinism, InstanceGenerationIsSeedStable) {
  Rng a(7), b(7);
  auto ia = LDisjInstance::make_with_intersections(3, 2, a);
  auto ib = LDisjInstance::make_with_intersections(3, 2, b);
  EXPECT_EQ(ia.x(), ib.x());
  EXPECT_EQ(ia.y(), ib.y());
}

TEST(Determinism, ClassicalMachinesAreSeedStableToo) {
  Rng rng(8);
  auto inst = LDisjInstance::make_with_intersections(3, 1, rng);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    qols::core::ClassicalSamplingRecognizer a(seed, 4), b(seed, 4);
    auto sa = inst.stream();
    auto sb = inst.stream();
    ASSERT_EQ(run_stream(*sa, a), run_stream(*sb, b));
  }
}

TEST(OptionWiring, RecognizerLevelGateSinkEmitsReplayableTape) {
  Rng rng(9);
  auto inst = LDisjInstance::make_with_intersections(1, 1, rng);

  qols::gates::TapeWriterSink tape;
  QuantumOnlineRecognizer::Options opts;
  opts.a3.gate_sink = &tape;
  opts.a3.simulate = true;  // simulate AND emit simultaneously
  QuantumOnlineRecognizer rec(5, opts);
  auto s = inst.stream();
  while (auto sym = s->next()) rec.feed(*sym);
  const double p_accept = rec.exact_acceptance_probability();

  auto circuit = qols::quantum::Circuit::from_tape(tape.tape());
  ASSERT_TRUE(circuit.has_value());
  ASSERT_GT(circuit->size(), 0u);
  qols::quantum::StateVector replay(circuit->qubits_spanned());
  circuit->apply_to(replay);
  // P[accept] = P[l measures 0] on a structurally valid, consistent word.
  const double p_replay = 1.0 - replay.probability_one(2 * 1 + 1);
  EXPECT_NEAR(p_replay, p_accept, 1e-9);
}

TEST(OptionWiring, SpaceReportIncludesAncillasInGateMode) {
  Rng rng(10);
  auto inst = LDisjInstance::make_disjoint(2, rng);
  qols::gates::CountingSink count;
  QuantumOnlineRecognizer::Options opts;
  opts.a3.gate_sink = &count;
  QuantumOnlineRecognizer rec(5, opts);
  auto s = inst.stream();
  while (auto sym = s->next()) rec.feed(*sym);
  // 2k+2 data qubits plus up to 2k compiler ancillas.
  EXPECT_GT(rec.space_used().qubits, 2ULL * 2 + 2);
  EXPECT_LE(rec.space_used().qubits, 4ULL * 2 + 2);
}

TEST(OptionWiring, MaxSimKAutoPicksTheStructuredBackend) {
  // Past the dense ceiling the streamer no longer goes dark: the structured
  // backend picks up the simulation and the decision is still honest.
  QuantumOnlineRecognizer::Options opts;
  opts.a3.max_sim_k = 1;
  QuantumOnlineRecognizer rec(5, opts);
  Rng rng(11);
  auto inst = LDisjInstance::make_disjoint(2, rng);  // k = 2 > max_sim_k
  auto s = inst.stream();
  EXPECT_NO_THROW({
    EXPECT_TRUE(run_stream(*s, rec));  // member: perfect completeness
  });
  ASSERT_NE(rec.a3().simulation_backend(), nullptr);
  EXPECT_EQ(rec.a3().simulation_backend()->id(), "structured");
  EXPECT_TRUE(rec.fully_simulated());
  EXPECT_EQ(rec.space_used().qubits, 2ULL * 2 + 2);
}

TEST(OptionWiring, BeyondEveryCeilingIsExplicitlyNotSimulated) {
  // With both ceilings below k there is no honest decision; the recognizer
  // must say so instead of silently accepting or rejecting.
  QuantumOnlineRecognizer::Options opts;
  opts.a3.max_sim_k = 1;
  opts.a3.max_structured_k = 1;
  QuantumOnlineRecognizer rec(5, opts);
  Rng rng(11);
  auto inst = LDisjInstance::make_disjoint(2, rng);  // k = 2 > both ceilings
  auto s = inst.stream();
  EXPECT_NO_THROW(run_stream(*s, rec));
  EXPECT_EQ(rec.space_used().qubits, 0u);  // register never instantiated
  EXPECT_FALSE(rec.fully_simulated());
  EXPECT_EQ(rec.verdict(), QuantumOnlineRecognizer::Verdict::kNotSimulated);
  EXPECT_FALSE(rec.finish());  // never claims membership it could not check
  // The probability probe agrees with the verdict: an un-run A3 contributes
  // no acceptance mass (it must not read as a certain accept).
  EXPECT_EQ(rec.exact_acceptance_probability(), 0.0);
}

TEST(OptionWiring, UnknownBackendIdThrowsAtConstruction) {
  QuantumOnlineRecognizer::Options opts;
  opts.a3.backend = "analog";
  EXPECT_THROW(QuantumOnlineRecognizer rec(5, opts), std::invalid_argument);
}

}  // namespace
