// Unit tests: classical baselines (Prop 3.7 block machine, full storage,
// sampling, Bloom).
#include <gtest/gtest.h>

#include "qols/core/classical_recognizers.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"

namespace {

using namespace qols::core;
using qols::lang::LDisjInstance;
using qols::lang::make_mutant_stream;
using qols::lang::MutantKind;
using qols::machine::run_stream;
using qols::util::Rng;

TEST(BlockRecognizer, AcceptsMembers) {
  Rng rng(1);
  for (unsigned k = 1; k <= 4; ++k) {
    auto inst = LDisjInstance::make_disjoint(k, rng);
    ClassicalBlockRecognizer rec(k);
    auto s = inst.stream();
    ASSERT_TRUE(run_stream(*s, rec)) << "k=" << k;
  }
}

TEST(BlockRecognizer, RejectsEveryIntersectionDeterministically) {
  Rng rng(2);
  for (unsigned k = 1; k <= 3; ++k) {
    const std::uint64_t m = std::uint64_t{1} << (2 * k);
    for (std::uint64_t t : {std::uint64_t{1}, std::uint64_t{2}, m / 2, m}) {
      auto inst = LDisjInstance::make_with_intersections(k, t, rng);
      for (std::uint64_t seed = 0; seed < 5; ++seed) {
        ClassicalBlockRecognizer rec(seed);
        auto s = inst.stream();
        ASSERT_FALSE(run_stream(*s, rec)) << "k=" << k << " t=" << t;
        EXPECT_TRUE(rec.intersection_found());
      }
    }
  }
}

TEST(BlockRecognizer, FindsIntersectionInEveryBlockPosition) {
  // Plant a single intersection at each possible index; the block machine
  // must catch all of them (block i is certified in repetition i).
  const unsigned k = 2;
  const std::uint64_t m = 16;
  for (std::uint64_t pos = 0; pos < m; ++pos) {
    qols::util::BitVec x(m), y(m);
    x.set(pos, true);
    y.set(pos, true);
    LDisjInstance inst(k, x, y);
    ClassicalBlockRecognizer rec(0);
    auto s = inst.stream();
    ASSERT_FALSE(run_stream(*s, rec)) << "pos=" << pos;
  }
}

TEST(BlockRecognizer, RejectsMalformedWords) {
  Rng rng(3);
  auto inst = LDisjInstance::make_disjoint(2, rng);
  for (auto kind : {MutantKind::kBadPrefix, MutantKind::kTruncated,
                    MutantKind::kTrailingGarbage}) {
    ClassicalBlockRecognizer rec(1);
    auto s = make_mutant_stream(inst, kind, rng);
    ASSERT_FALSE(run_stream(*s, rec)) << static_cast<int>(kind);
  }
}

TEST(BlockRecognizer, SpaceIsCubeRootOfInputLength) {
  Rng rng(4);
  for (unsigned k = 1; k <= 5; ++k) {
    auto inst = LDisjInstance::make_disjoint(k, rng);
    ClassicalBlockRecognizer rec(1);
    auto s = inst.stream();
    run_stream(*s, rec);
    const auto space = rec.space_used();
    EXPECT_EQ(space.qubits, 0u);
    // Dominated by the 2^k-bit buffer.
    EXPECT_GE(space.classical_bits, std::uint64_t{1} << k);
    EXPECT_LE(space.classical_bits, (std::uint64_t{1} << k) + 200 * k);
  }
}

TEST(FullRecognizer, DecidesCorrectlyAndUsesMBits) {
  Rng rng(5);
  const unsigned k = 3;
  auto member = LDisjInstance::make_disjoint(k, rng);
  auto nonmember = LDisjInstance::make_with_intersections(k, 1, rng);
  ClassicalFullRecognizer rec(1);
  {
    auto s = member.stream();
    EXPECT_TRUE(run_stream(*s, rec));
  }
  rec.reset(2);
  {
    auto s = nonmember.stream();
    EXPECT_FALSE(run_stream(*s, rec));
  }
  const auto space = rec.space_used();
  EXPECT_GE(space.classical_bits, std::uint64_t{1} << (2 * k));  // m bits
}

TEST(SamplingRecognizer, AcceptsMembers) {
  Rng rng(6);
  auto inst = LDisjInstance::make_disjoint(2, rng);
  ClassicalSamplingRecognizer rec(1, 4);
  auto s = inst.stream();
  EXPECT_TRUE(run_stream(*s, rec));
}

TEST(SamplingRecognizer, MissesSparseIntersectionsAtSmallBudget) {
  // One intersection among m = 256, budget 2 per repetition, 16 reps:
  // detection prob ~ 1 - (1 - 1/256)^{32} ~ 0.12 — mostly misses.
  Rng rng(7);
  auto inst = LDisjInstance::make_with_intersections(4, 1, rng);
  int misses = 0;
  constexpr int kRuns = 60;
  for (int i = 0; i < kRuns; ++i) {
    ClassicalSamplingRecognizer rec(100 + i, 2);
    auto s = inst.stream();
    if (run_stream(*s, rec)) ++misses;  // wrongly accepted
  }
  EXPECT_GE(misses, kRuns / 2);  // fails far more often than a 1/3 error bound
}

TEST(SamplingRecognizer, CatchesDenseIntersections) {
  // t = m/2: each probe hits with prob 1/2; 2^k reps of budget 4 make a miss
  // vanishingly unlikely.
  Rng rng(8);
  auto inst = LDisjInstance::make_with_intersections(3, 32, rng);
  ClassicalSamplingRecognizer rec(9, 4);
  auto s = inst.stream();
  EXPECT_FALSE(run_stream(*s, rec));
}

TEST(SamplingRecognizer, SpaceScalesWithBudget) {
  Rng rng(9);
  auto inst = LDisjInstance::make_disjoint(3, rng);
  ClassicalSamplingRecognizer small(1, 2), large(1, 64);
  auto s1 = inst.stream();
  run_stream(*s1, small);
  auto s2 = inst.stream();
  run_stream(*s2, large);
  EXPECT_LT(small.space_used().classical_bits,
            large.space_used().classical_bits);
}

TEST(BloomRecognizer, NeverMissesIntersections) {
  // No false negatives: intersecting inputs are always rejected.
  Rng rng(10);
  for (unsigned k = 2; k <= 3; ++k) {
    auto inst = LDisjInstance::make_with_intersections(k, 1, rng);
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      ClassicalBloomRecognizer rec(seed, 64, 2);
      auto s = inst.stream();
      ASSERT_FALSE(run_stream(*s, rec)) << "k=" << k << " seed=" << seed;
    }
  }
}

TEST(BloomRecognizer, SmallFiltersRejectDisjointInputsToo) {
  // At a tiny filter the false-positive rate approaches 1 and members get
  // rejected — the failure mode E10 quantifies.
  Rng rng(11);
  auto inst = LDisjInstance::make_disjoint(4, rng);  // m = 256, ~128 ones
  int wrong = 0;
  constexpr int kRuns = 40;
  for (int i = 0; i < kRuns; ++i) {
    ClassicalBloomRecognizer rec(i, 16, 2);
    auto s = inst.stream();
    if (!run_stream(*s, rec)) ++wrong;
  }
  EXPECT_GE(wrong, kRuns * 3 / 4);
}

TEST(BloomRecognizer, LargeFiltersAreAccurate) {
  Rng rng(12);
  auto member = LDisjInstance::make_disjoint(2, rng);
  ClassicalBloomRecognizer rec(1, 4096, 3);
  auto s = member.stream();
  EXPECT_TRUE(run_stream(*s, rec));
}

TEST(AllClassical, NamesAreDistinct) {
  ClassicalBlockRecognizer a(1);
  ClassicalFullRecognizer b(1);
  ClassicalSamplingRecognizer c(1, 2);
  ClassicalBloomRecognizer d(1, 8, 1);
  EXPECT_NE(a.name(), b.name());
  EXPECT_NE(a.name(), c.name());
  EXPECT_NE(a.name(), d.name());
  EXPECT_NE(c.name(), d.name());
}

}  // namespace
