#pragma once
// The serving layer: many interleaved input streams, one recognizer family.
//
// Everything below core/ decides ONE stream per recognizer instance. Real
// deployments (the introduction's "data from large databases" scenario, or
// the multi-stream workloads of Khadiev et al.) interleave many independent
// words arriving chunk by chunk — a load balancer in front of a rack of
// online machines. RecognizerService models exactly that: it owns a
// factory-config (language scale is carried by the words themselves;
// recognizer kind and quantum backend id are fixed per service), hands out
// session handles, ingests chunks in any interleaving, and shards the
// buffered work of ready sessions across the process-wide ThreadPool.
//
// Determinism contract: a session's verdict is a pure function of its seed
// and the symbols fed to it, in order. The pool only decides WHICH WORKER
// advances a session, never the order of that session's symbols, so serving
// is bit-identical to running each stream alone through run_stream.
//
//   RecognizerService svc({.spec = {.kind = RecognizerKind::kClassicalBlock}});
//   auto a = svc.open(1), b = svc.open(2);
//   svc.feed(a, chunk_a0); svc.feed(b, chunk_b0); svc.feed(a, chunk_a1);
//   Verdict va = svc.finish(a);   // sessions finish in any order
//
// The public API is meant to be driven from one thread (the "acceptor");
// parallelism happens inside flush(), across sessions. Exception: evict(),
// revive(), evicted(), feed(), and stats() may race a flush() draining on
// the pool — they synchronize on per-shard slot locks. Map-shape operations
// (open/open_at/finish) remain acceptor-only.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include <atomic>

#include "qols/machine/online_recognizer.hpp"
#include "qols/service/session_table.hpp"
#include "qols/stream/symbol_stream.hpp"
#include "qols/telemetry/registry.hpp"
#include "qols/util/thread_pool.hpp"

namespace qols::service {

/// The recognizer families the service can serve. One service serves one
/// family — mirroring a deployment where a fleet is provisioned for a
/// specific machine and space budget.
enum class RecognizerKind {
  kClassicalBlock,     ///< Proposition 3.7 (Theta(n^{1/3}) bits)
  kClassicalFull,      ///< full x storage (Theta(n^{2/3}) bits)
  kClassicalSampling,  ///< sub-lower-bound sampler (must fail; E10)
  kClassicalBloom,     ///< sub-lower-bound Bloom filter (must fail; E10)
  kQuantum,            ///< Theorem 3.4 (O(log n) bits + qubits)
};

/// Human-readable kind name ("classical-block", ...), matching the
/// recognizers' own name() strings.
std::string recognizer_kind_name(RecognizerKind kind);

/// Factory-config: everything needed to build one recognizer per session.
struct RecognizerSpec {
  RecognizerKind kind = RecognizerKind::kClassicalBlock;
  /// Quantum backend id ("dense", "structured", "auto"; empty = auto with
  /// QOLS_BACKEND override). Ignored by the classical kinds.
  std::string backend{};
  /// Quantum precision knob: simulate with float amplitudes (the dense
  /// backend's SIMD fast mode). Verdicts, accept counts, and SpaceReports
  /// are precision-invariant (tests/test_precision_differential.cpp and
  /// fuzz property P6 enforce this); ignored by the classical kinds and by
  /// the double-only structured backend.
  bool float_amplitudes = false;
  /// Per-repetition index budget of the sampling recognizer.
  std::uint64_t sampling_budget = 16;
  /// Filter geometry of the Bloom recognizer.
  std::uint64_t bloom_filter_bits = 64;
  unsigned bloom_num_hashes = 2;

  /// Builds a fresh recognizer seeded for one session. Thread-safe (shares
  /// only immutable state). Throws std::invalid_argument on a bad backend.
  std::unique_ptr<machine::OnlineRecognizer> make(std::uint64_t seed) const;
};

class RecognizerService {
 public:
  using SessionId = std::uint64_t;

  /// A finished session's outcome: the decision, whether the machine's
  /// decision procedure actually ran (see OnlineRecognizer::
  /// fully_simulated), and its conceptual space footprint.
  struct Verdict {
    bool accepted = false;
    bool fully_simulated = true;
    machine::SpaceReport space;
  };

  struct Config {
    RecognizerSpec spec;
    /// Buffered symbols *within one shard* that trigger an automatic flush
    /// across the pool. Lower = fresher sessions, higher = better batching.
    /// 0 is legal: every feed() flushes immediately.
    std::uint64_t flush_threshold = std::uint64_t{1} << 18;
    /// Pool to shard session work onto; nullptr = util::ThreadPool::global().
    util::ThreadPool* pool = nullptr;
    /// Directory for evicted-session spill files; empty = a unique directory
    /// under the system temp path, created lazily on first evict() and
    /// removed (best effort) with the service. Durable services (below) keep
    /// their spill directory across restarts instead.
    std::string spill_dir{};
    /// Durable mode: journal every open/evict/revive/finish/migrate into the
    /// session manifest (SessionTable) under spill_dir, so persist() +
    /// recover() carry live sessions across a process restart. Requires a
    /// non-empty spill_dir (the directory IS the durable identity; the ctor
    /// throws std::invalid_argument otherwise). The destructor of a durable
    /// service leaves spill files and the manifest in place.
    bool durable = false;
    /// Manifest fsync batching (SessionTable::Options::sync_every). Evict
    /// records and compaction always force a sync regardless.
    std::uint64_t manifest_sync_every = 32;
  };

  /// Aggregate throughput counters (monotonic since construction or the
  /// last reset_stats()). This is a VALUE snapshot: stats() materializes it
  /// from the service's internal atomic cells, so a copy taken mid-drain is
  /// torn-free — every field is a plausible point-in-time reading even
  /// while pool workers are accumulating.
  struct Stats {
    std::uint64_t sessions_opened = 0;
    std::uint64_t sessions_finished = 0;
    std::uint64_t symbols_ingested = 0;
    std::uint64_t flushes = 0;
    /// Wall-clock spent inside flush drains (the recognizer work).
    double busy_seconds = 0.0;
    std::uint64_t evictions = 0;
    std::uint64_t revives = 0;
    /// Spill-file bytes written by evict() / read back by revive.
    std::uint64_t spill_bytes_written = 0;
    std::uint64_t spill_bytes_read = 0;
    /// Cross-shard migrations completed (resident-path migrations also bump
    /// evictions/revives — the move is literally an evict→revive).
    std::uint64_t migrations = 0;
    /// Sessions re-adopted from the manifest by recover().
    std::uint64_t recovered_sessions = 0;

    // NOTE: there is deliberately no reset() here. This struct is a VALUE
    // snapshot — a whole-struct `*this = Stats{}` on anything shared with a
    // running service would be a torn write racing the pool workers. The
    // live accumulators are zeroed with RecognizerService::reset_stats(),
    // which stores each atomic cell individually (TSan-verified concurrent
    // with flush drains); a held copy is reset by plain reassignment.

    double symbols_per_second() const noexcept {
      return busy_seconds > 0.0
                 ? static_cast<double>(symbols_ingested) / busy_seconds
                 : 0.0;
    }
    double sessions_per_second() const noexcept {
      return busy_seconds > 0.0
                 ? static_cast<double>(sessions_finished) / busy_seconds
                 : 0.0;
    }
  };

  explicit RecognizerService(Config config);
  ~RecognizerService();

  RecognizerService(const RecognizerService&) = delete;
  RecognizerService& operator=(const RecognizerService&) = delete;

  /// Opens a session: constructs the recognizer from `seed` and returns its
  /// handle. Auto-assigned ids are monotonic and skip any id currently held
  /// open (e.g. one claimed by open_at), so open() never collides. Each
  /// session is pinned to the shard id % pool-size for its whole life, so
  /// flush work for different shards never touches the same session state.
  SessionId open(std::uint64_t seed);

  /// Opens a session under a caller-chosen id — the network server maps
  /// wire session ids straight onto service ids with no translation table.
  /// Throws std::invalid_argument when `id` is currently open (resident OR
  /// evicted). The id-reuse rule: an id becomes reusable the moment
  /// finish() retires it (its spill file, if any, is removed by then), and
  /// never before. Returns `id`.
  SessionId open_at(SessionId id, std::uint64_t seed);

  /// Buffers a chunk for the session (copied; the caller's span may die).
  /// Triggers a pooled flush when the session's shard crosses the threshold.
  /// Transparently revives an evicted session first. Throws
  /// std::out_of_range on an unknown or finished session.
  void feed(SessionId id, std::span<const stream::Symbol> chunk);

  /// Zero-copy ingestion: drains the session's own buffer (order is
  /// preserved), then feeds `chunk` straight into the recognizer on the
  /// calling thread — nothing is copied into the session buffer, so spans
  /// lent by MappedFileStream::view_chunk reach feed_chunk untouched.
  /// Transparently revives an evicted session. Throws std::out_of_range on
  /// an unknown or finished session.
  void feed_borrowed(SessionId id, std::span<const stream::Symbol> chunk);

  /// Drains the session's remaining buffer, finishes the recognizer, and
  /// retires the session (reviving it first if evicted; its spill file is
  /// removed). Sessions may finish in any order. Throws std::out_of_range
  /// on an unknown or already-finished session.
  Verdict finish(SessionId id);

  /// Spills an idle session to disk: drains its buffer, serializes the
  /// recognizer (OnlineRecognizer::snapshot) into a file under the spill
  /// directory, and frees the in-memory recognizer. A later feed()/
  /// feed_borrowed()/finish() restores it bit-identically. Evicting an
  /// already-evicted session is a no-op; an unknown or finished session
  /// throws std::out_of_range; a recognizer that cannot snapshot throws
  /// machine::UnsupportedSnapshot and the session stays resident.
  void evict(SessionId id);

  /// Restores an evicted session into memory (no-op when resident). Throws
  /// std::out_of_range on an unknown or finished session.
  void revive(SessionId id);

  /// True when the session is currently spilled to disk.
  bool evicted(SessionId id);

  /// Feeds every buffered session in parallel across the pool, one task per
  /// shard. Called automatically by feed() at the threshold; call manually
  /// to drain.
  void flush();

  /// Moves a session to `target_shard`. A resident session is spilled on its
  /// old shard and revived on the new one (evict→revive, exactly the hot-
  /// shard shedding path); an evicted one just changes its recorded shard.
  /// Migrating to the session's current shard is a no-op (counters
  /// untouched). Throws std::out_of_range on an unknown/finished id and
  /// std::invalid_argument when target_shard >= shard_count().
  void migrate(SessionId id, std::size_t target_shard);

  /// Greedy rebalancing policy hook: while the fullest shard holds at least
  /// two sessions more than the emptiest, migrate one across (preferring
  /// evicted sessions — moving those is a pure bookkeeping write). Stops
  /// after `max_moves`. Returns the number of migrations performed.
  std::size_t rebalance(std::size_t max_moves = SIZE_MAX);

  /// The shard a session is currently pinned to. Throws std::out_of_range
  /// on an unknown/finished id.
  std::size_t shard_of(SessionId id);

  /// What recover() rebuilt from the manifest.
  struct RecoveryReport {
    /// Sessions re-adopted (all evicted; they revive lazily on first feed).
    std::uint64_t sessions_recovered = 0;
    /// Sessions the manifest shows resident at the crash: their state died
    /// with the process (only evict() makes state durable), so they cannot
    /// be resumed. Reported, not silently dropped.
    std::vector<SessionId> lost;
    std::uint64_t records_replayed = 0;
  };

  /// Durable-mode checkpoint: evicts every resident session (spilling its
  /// recognizer, journaling kEvict) and compacts the manifest, leaving a
  /// directory from which a fresh process can recover(). Returns the number
  /// of sessions persisted. Throws std::logic_error when not durable.
  std::size_t persist();

  /// Rebuilds the session table from the manifest in this service's (durable)
  /// spill_dir. Must run before any session operation when the directory
  /// holds a prior manifest — journaled operations throw std::logic_error
  /// until then. Verifies every claimed spill file exists with the recorded
  /// size (else SpillMissing) and that no unclaimed qols-session-*.snap
  /// remains (else OrphanSpill); torn/corrupt manifests raise the
  /// SessionTable typed errors. Never fabricates a verdict: recovered
  /// sessions resume bit-identically or recovery fails loudly.
  RecoveryReport recover();

  /// True when the durable ctor found a prior manifest and recover() has not
  /// run yet.
  bool pending_recovery() const noexcept { return pending_recovery_; }

  /// Test-only (the kill-point matrix): crash the manifest after n more
  /// journaled operations — see SessionTable::abort_after. No-op unless
  /// durable.
  void persist_abort_after(std::uint64_t n) noexcept;

  /// Manifest records appended so far (0 when not durable).
  std::uint64_t manifest_records() const noexcept;

  std::size_t open_sessions() const noexcept { return sessions_.size(); }
  /// Total buffered symbols, summed over shards (not maintained globally on
  /// the feed hot path).
  std::uint64_t buffered_symbols() const noexcept;
  /// Torn-free value snapshot of the internal atomic accumulators (safe to
  /// call while a flush is draining on the pool).
  Stats stats() const noexcept;
  /// Zeroes the live accumulators (benchmark warmup discard).
  void reset_stats() noexcept;
  const Config& config() const noexcept { return config_; }
  std::size_t shard_count() const noexcept { return shards_.size(); }

 private:
  struct Session {
    std::unique_ptr<machine::OnlineRecognizer> recognizer;
    std::vector<stream::Symbol> pending;
    std::size_t shard = 0;
    bool evicted = false;
    /// Construction seed — recorded so the manifest can be compacted to
    /// kOpen records that rebuild the session faithfully.
    std::uint64_t seed = 0;
    /// Spill-file size while evicted (0 when resident); recover() checks it
    /// against the file on disk.
    std::uint64_t spill_bytes = 0;
  };

  struct Shard {
    /// Sessions with non-empty buffers, in first-buffered order.
    std::vector<SessionId> ready;
    std::uint64_t buffered = 0;
  };

  /// The live accumulators behind stats(). Plain relaxed atomics — NOT
  /// telemetry instruments — because Stats is functional accounting the
  /// tests rely on: it must keep counting with telemetry runtime-disabled
  /// or compiled out. The registry-backed instruments below mirror a subset
  /// for export and add what Stats never had (latency tails, queue depths).
  struct StatCells {
    std::atomic<std::uint64_t> sessions_opened{0};
    std::atomic<std::uint64_t> sessions_finished{0};
    std::atomic<std::uint64_t> symbols_ingested{0};
    std::atomic<std::uint64_t> flushes{0};
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> revives{0};
    std::atomic<std::uint64_t> spill_bytes_written{0};
    std::atomic<std::uint64_t> spill_bytes_read{0};
    std::atomic<std::uint64_t> migrations{0};
    std::atomic<std::uint64_t> recovered_sessions{0};
  };

  /// Registry-backed instruments, resolved once at construction (references
  /// stay valid forever; recording is lock-free and gated by
  /// telemetry::enabled()).
  struct Instruments {
    telemetry::Gauge& sessions_open;
    telemetry::Counter& symbols_ingested;
    telemetry::Counter& borrowed_chunks;
    telemetry::Counter& evictions;
    telemetry::Counter& revives;
    telemetry::Counter& spill_bytes_written;
    telemetry::Counter& spill_bytes_read;
    telemetry::Counter& migrations;
    telemetry::Counter& recovered_sessions;
    telemetry::Counter& manifest_records;
    telemetry::Counter& compactions;
    telemetry::LatencyHistogram& flush_ns;
    telemetry::LatencyHistogram& finish_ns;

    Instruments();
  };

  Session& session_or_throw(SessionId id);
  /// Locks the session's shard, then drains. Safe against a concurrent
  /// flush() on the pool.
  void drain_inline(SessionId id, Session& session);
  /// Feeds the session's buffered symbols inline and removes it from its
  /// shard's ready list. Preconditions: session is resident AND the caller
  /// holds that session's shard mutex.
  void drain_locked(SessionId id, Session& session);
  void revive_session(SessionId id, Session& session);
  std::string spill_path(SessionId id);
  /// The durable journal, or nullptr outside durable mode. Throws
  /// std::logic_error while a prior manifest awaits recover().
  SessionTable* journal();
  /// sessions_ as the manifest's live-session view (compaction input).
  std::map<SessionId, SessionTable::LiveSession> live_view() const;

  Config config_;
  util::ThreadPool* pool_ = nullptr;
  SessionId next_id_ = 1;
  std::unordered_map<SessionId, Session> sessions_;
  std::vector<Shard> shards_;
  /// Per-shard slot locks. A flush worker owns its shard's mutex for the
  /// whole drain; evict/evicted/revive/feed/drain take the same lock, so
  /// spilling or probing a session mid-flush no longer races the pool (the
  /// documented PR 7 gap). Separate array because std::mutex is immovable
  /// and Shard must stay movable.
  std::unique_ptr<std::mutex[]> shard_mu_;
  /// One queue-depth gauge per shard ("service.shard_queue_depth.<i>"),
  /// written with absolute set()s so toggling telemetry at runtime can
  /// never leave a gauge out of sync with the shard.
  std::vector<telemetry::Gauge*> shard_depth_;
  std::string spill_dir_;        // resolved on first evict()
  bool owns_spill_dir_ = false;  // we created it; remove it in the dtor
  std::unique_ptr<SessionTable> table_;  // durable mode only
  bool pending_recovery_ = false;
  StatCells cells_;
  Instruments telem_;
};

}  // namespace qols::service
