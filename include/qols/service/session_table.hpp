#pragma once
// The durable session table: a crash-safe, append-only manifest journal of
// session lifecycle records, written under the service's spill directory.
//
// The PR 7 snapshot codec can freeze any recognizer to bytes, but the
// session table itself — which ids are open, which are spilled, which shard
// owns them — lived only in memory, so a process restart orphaned every
// spill file. This journal is the missing half of the durability contract:
//
//   file    <spill_dir>/qols-manifest.journal
//   header  8 bytes: 'Q' 'O' 'L' 'S' 'M' 'A' 'N' <version=1>
//   record  u32 payload_len | u32 crc32(payload) | payload
//   payload u8 record type, then little-endian fields (util::serde):
//     kOpen    (1): u64 id, u64 seed, u64 shard
//     kEvict   (2): u64 id, u64 spill_bytes
//     kRevive  (3): u64 id
//     kFinish  (4): u64 id
//     kMigrate (5): u64 id, u64 shard
//
// Write-ordering invariant: THE JOURNAL NEVER CLAIMS A SPILL THAT IS NOT
// DURABLE. evict() writes and syncs the spill file before appending kEvict;
// revive appends kRevive before unlinking the spill file. A real crash in
// either window therefore leaves a spill file the journal does not claim —
// recovery reports it as the typed OrphanSpill error, never a wrong verdict.
//
// Sync policy: records are written immediately (one write() per record) and
// fsync'd in batches of Options::sync_every; evict records and compaction
// force a sync (a spilled session must survive power loss, not just process
// death).
//
// Compaction invariant: compact(live) atomically (tmp + fsync + rename +
// dir fsync) replaces the journal with the minimal record sequence whose
// replay equals the live-session view — one kOpen per live session (with its
// CURRENT shard, folding migrations) plus one kEvict per spilled session.
//
// Recovery (replay) is a pure function of the file. Typed errors:
//   ManifestMissing — no journal file, or a zero-byte file (a crash before
//                     the header became durable left nothing to recover);
//   ManifestTorn    — the file ends mid-header or mid-record (the classic
//                     torn final append);
//   ManifestCorrupt — bad magic/version, CRC mismatch, implausible record
//                     length, or a record that contradicts the replay state
//                     (open of a live id, evict of an unknown id, ...);
//   OrphanSpill     — a qols-session-*.snap file no live evicted session
//                     claims (raised by RecognizerService::recover);
//   SpillMissing    — a live evicted session whose spill file is absent or
//                     has the wrong size (raised by recover as well).

#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace qols::service {

/// Base of every durability failure. Derives std::runtime_error: recovery
/// errors are environmental (a damaged directory), not programming errors.
class RecoveryError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ManifestMissing : public RecoveryError {
 public:
  using RecoveryError::RecoveryError;
};

class ManifestTorn : public RecoveryError {
 public:
  using RecoveryError::RecoveryError;
};

class ManifestCorrupt : public RecoveryError {
 public:
  using RecoveryError::RecoveryError;
};

class OrphanSpill : public RecoveryError {
 public:
  using RecoveryError::RecoveryError;
};

class SpillMissing : public RecoveryError {
 public:
  using RecoveryError::RecoveryError;
};

/// Thrown by the test-only abort_after() hook to simulate a crash at a
/// journal record boundary. NOT a RecoveryError: production code never
/// throws or catches it; the kill-point matrix test does both.
class InjectedCrash : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only journal over the manifest file. Single-writer (the service's
/// acceptor thread); replay() is static and touches only the file.
class SessionTable {
 public:
  enum class RecordType : std::uint8_t {
    kOpen = 1,
    kEvict = 2,
    kRevive = 3,
    kFinish = 4,
    kMigrate = 5,
  };

  struct Options {
    /// Directory holding the journal (and the spill files it describes).
    std::string dir;
    /// fsync after this many unsynced records; 0 = sync every record.
    /// Evict records and compaction always force a sync.
    std::uint64_t sync_every = 32;
  };

  /// One live session as the journal describes it.
  struct LiveSession {
    std::uint64_t seed = 0;
    std::uint64_t shard = 0;
    bool evicted = false;
    std::uint64_t spill_bytes = 0;
  };

  /// The replayed manifest: every session opened and not yet finished, in
  /// id order, plus the record count (the kill-point matrix coordinate).
  struct Replay {
    std::map<std::uint64_t, LiveSession> live;
    std::uint64_t records = 0;
  };

  /// Journal file name under the spill directory.
  static const char* file_name() noexcept { return "qols-manifest.journal"; }
  static std::string path_in(const std::string& dir);

  /// Opens (or creates) the journal for appending. A fresh file gets the
  /// header immediately. Throws std::runtime_error on I/O failure. NOTE:
  /// opening an existing journal does NOT validate it — call replay() first
  /// when prior records must be adopted (RecognizerService::recover does).
  explicit SessionTable(Options opts);
  ~SessionTable();

  SessionTable(const SessionTable&) = delete;
  SessionTable& operator=(const SessionTable&) = delete;

  /// The injected-crash hook. The service calls this at the START of every
  /// journaled operation — before the spill file write in evict(), before
  /// the append elsewhere — so abort_after(n) leaves exactly n records and
  /// a directory whose spill files match them: a consistent crash image.
  /// No-op unless armed; throws InjectedCrash when the budget runs out and
  /// marks the table dead (all later writes throw too, the way a crashed
  /// process stays crashed).
  void crash_point();

  // One append per call. Appends do NOT consume the crash budget themselves
  // (the caller's crash_point() already did); a dead table refuses them.
  void record_open(std::uint64_t id, std::uint64_t seed, std::uint64_t shard);
  void record_evict(std::uint64_t id, std::uint64_t spill_bytes);
  void record_revive(std::uint64_t id);
  void record_finish(std::uint64_t id);
  void record_migrate(std::uint64_t id, std::uint64_t shard);

  /// Forces the journal to disk now.
  void sync();

  /// Atomically rewrites the journal to the minimal equivalent of `live`
  /// (see the compaction invariant above) and syncs it.
  void compact(const std::map<std::uint64_t, LiveSession>& live);

  /// Records appended through this handle (compaction resets the file but
  /// not this counter; it counts operations, the matrix coordinate).
  std::uint64_t records_appended() const noexcept { return appended_; }
  std::uint64_t syncs() const noexcept { return syncs_; }
  std::uint64_t compactions() const noexcept { return compactions_; }

  /// Test-only: arm crash_point() to throw on its (n+1)-th subsequent call
  /// (n = 0 crashes the very next journaled operation).
  void abort_after(std::uint64_t n) noexcept;

  /// Replays <dir>/qols-manifest.journal. Pure read; throws the typed
  /// errors documented above.
  static Replay replay(const std::string& dir);

 private:
  void ensure_alive() const;
  void append(RecordType type, const std::vector<std::uint8_t>& payload);
  void open_fd();

  Options opts_;
  std::string path_;
  int fd_ = -1;
  std::uint64_t appended_ = 0;
  std::uint64_t unsynced_ = 0;
  std::uint64_t syncs_ = 0;
  std::uint64_t compactions_ = 0;
  bool armed_ = false;
  std::uint64_t remaining_ = 0;
  bool dead_ = false;
};

}  // namespace qols::service
