#pragma once
// The qols wire protocol: compact, versioned, length-prefixed binary frames
// over a byte stream (TCP, or any in-process byte pipe — the fuzz harness
// drives the same decoder with no socket in sight).
//
// Frame layout (all integers little-endian, serde style):
//
//   u32 payload_length | u8 frame_type | payload_length bytes of payload
//
// payload_length counts the payload only (not the 5-byte header) and is
// bounded by kMaxFramePayload; a larger prefix is hostile by definition and
// the decoder throws util::serde::DecodeError before allocating anything.
// Payloads are encoded with ByteWriter/ByteReader: fixed little-endian
// widths, bounds-checked reads, DecodeError on truncated or trailing bytes.
//
// Conversation shape (client frames left, server frames right):
//
//   HELLO{version, kind_tag}      ->  HELLO_OK{version, spec...} | ERROR
//   OPEN{session, seed}           ->  OPEN_OK{session}           | ERROR
//   FEED{session, symbol bytes}   ->  (no response; errors only)
//   FINISH{session}               ->  VERDICT{session, ...}      | ERROR
//   RESUME{session}               ->  RESUME_OK{session}         | ERROR  (v2)
//   STATS{}                       ->  STATS_TEXT{json}
//   METRICS{}                     ->  METRICS_TEXT{prometheus}
//
// RESUME (protocol v2) re-attaches a connection to a session that survived a
// server restart (or a dropped connection on a durable server): the server
// looks the id up in its recovered RecognizerService table and, when it is
// present and unowned, adopts it onto this connection so FEED/FINISH
// continue exactly where the session left off. Refusals are recoverable:
// kNotResumable (owned by a live connection, or the server is not durable),
// kUnknownSession (the id is not in the table).
//
// FEED payloads carry raw symbol bytes (one byte per stream::Symbol, values
// 0/1/2) after the u64 session id, so a chunk's bytes pass from the receive
// buffer to RecognizerService as one borrowed span — no re-encoding.
//
// Error frames are typed: ERROR{code, session, message}. Codes split into
// recoverable (the connection lives: unknown session, session exists,
// over-limit, draining) and fatal (the server flushes the error frame and
// closes: bad version, spec mismatch, malformed frame, protocol error).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "qols/stream/symbol_stream.hpp"
#include "qols/util/serde.hpp"

namespace qols::server::wire {

/// Bumped on any incompatible frame or payload change. HELLO carries the
/// client's version; the server accepts [kMinProtocolVersion,
/// kProtocolVersion] (v2 added RESUME without touching the v1 frames), echoes
/// the client's version in HELLO_OK, and refuses anything else with
/// kBadVersion. RESUME is only legal on a v2 conversation.
inline constexpr std::uint32_t kProtocolVersion = 2;
inline constexpr std::uint32_t kMinProtocolVersion = 1;

/// Hard ceiling on a single frame's payload. A length prefix above this is
/// rejected before any allocation. Large feeds simply span several frames —
/// the protocol is framing-invariant by construction.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 20;

/// Frame header bytes: u32 length + u8 type.
inline constexpr std::size_t kFrameHeaderSize = 5;

/// HELLO kind_tag wildcard: client accepts whatever family the server runs.
inline constexpr std::uint8_t kAnyKind = 0xff;

enum class FrameType : std::uint8_t {
  // client -> server
  kHello = 0x01,
  kOpen = 0x02,
  kFeed = 0x03,
  kFinish = 0x04,
  kStats = 0x05,
  kMetrics = 0x06,
  kResume = 0x07,  ///< protocol v2
  // server -> client
  kHelloOk = 0x81,
  kOpenOk = 0x82,
  kVerdict = 0x83,
  kStatsText = 0x84,
  kMetricsText = 0x85,
  kResumeOk = 0x87,  ///< protocol v2
  kError = 0xee,
};

enum class ErrorCode : std::uint8_t {
  kBadVersion = 1,     ///< fatal: HELLO version != kProtocolVersion
  kSpecMismatch = 2,   ///< fatal: HELLO kind_tag names another family
  kMalformedFrame = 3, ///< fatal: undecodable payload / oversized length
  kProtocolError = 4,  ///< fatal: frame out of order or unknown type
  kUnknownSession = 5, ///< recoverable: id not open on this connection
  kSessionExists = 6,  ///< recoverable: OPEN of an id already in use
  kOverLimit = 7,      ///< recoverable: session limit reached
  kDraining = 8,       ///< recoverable: server draining, no new sessions
  kNotResumable = 9,   ///< recoverable: RESUME refused (owned / not durable)
};

/// True when the server closes the connection after flushing this error.
bool error_is_fatal(ErrorCode code) noexcept;

const char* frame_type_name(FrameType type) noexcept;
const char* error_code_name(ErrorCode code) noexcept;

// ---------------------------------------------------------------------------
// Typed payloads

struct Hello {
  std::uint32_t version = kProtocolVersion;
  /// Recognizer family the client expects: a service::RecognizerKind value,
  /// or kAnyKind to accept whatever the server serves.
  std::uint8_t kind_tag = kAnyKind;
};

struct HelloOk {
  std::uint32_t version = kProtocolVersion;
  std::uint8_t kind = 0;  ///< the server's service::RecognizerKind
  bool float_amplitudes = false;
  std::uint64_t max_sessions = 0;
};

struct Open {
  std::uint64_t session = 0;  ///< caller-chosen wire id (service open_at)
  std::uint64_t seed = 0;     ///< recognizer construction seed
};

struct OpenOk {
  std::uint64_t session = 0;
};

/// Decoded FEED view: symbols borrow the frame payload (valid as long as the
/// payload span is).
struct FeedView {
  std::uint64_t session = 0;
  std::span<const stream::Symbol> symbols;
};

struct Finish {
  std::uint64_t session = 0;
};

/// RESUME (v2): adopt a recovered/released session onto this connection.
struct Resume {
  std::uint64_t session = 0;
};

struct ResumeOk {
  std::uint64_t session = 0;
};

struct WireVerdict {
  std::uint64_t session = 0;
  bool accepted = false;
  bool fully_simulated = true;
  std::uint64_t classical_bits = 0;
  std::uint64_t qubits = 0;
};

struct Error {
  ErrorCode code = ErrorCode::kProtocolError;
  std::uint64_t session = 0;  ///< 0 when the error is not session-scoped
  std::string message;
};

// ---------------------------------------------------------------------------
// Encoding: append one whole frame (header + payload) to `out`.

void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::span<const std::uint8_t> payload);

void append_hello(std::vector<std::uint8_t>& out, const Hello& h);
void append_hello_ok(std::vector<std::uint8_t>& out, const HelloOk& h);
void append_open(std::vector<std::uint8_t>& out, const Open& o);
void append_open_ok(std::vector<std::uint8_t>& out, const OpenOk& o);
void append_feed(std::vector<std::uint8_t>& out, std::uint64_t session,
                 std::span<const stream::Symbol> symbols);
void append_finish(std::vector<std::uint8_t>& out, const Finish& f);
void append_resume(std::vector<std::uint8_t>& out, const Resume& r);
void append_resume_ok(std::vector<std::uint8_t>& out, const ResumeOk& r);
void append_verdict(std::vector<std::uint8_t>& out, const WireVerdict& v);
/// STATS_TEXT / METRICS_TEXT: the payload is the raw UTF-8 text.
void append_text(std::vector<std::uint8_t>& out, FrameType type,
                 std::string_view text);
void append_error(std::vector<std::uint8_t>& out, const Error& e);

// ---------------------------------------------------------------------------
// Decoding: payload -> typed struct. All throw util::serde::DecodeError on
// truncated, oversized, or trailing bytes — callers translate into a typed
// kMalformedFrame error, never UB.

Hello read_hello(std::span<const std::uint8_t> payload);
HelloOk read_hello_ok(std::span<const std::uint8_t> payload);
Open read_open(std::span<const std::uint8_t> payload);
OpenOk read_open_ok(std::span<const std::uint8_t> payload);
/// Validates every symbol byte (<= kSep) and returns a borrowed view.
FeedView read_feed(std::span<const std::uint8_t> payload);
Finish read_finish(std::span<const std::uint8_t> payload);
Resume read_resume(std::span<const std::uint8_t> payload);
ResumeOk read_resume_ok(std::span<const std::uint8_t> payload);
WireVerdict read_verdict(std::span<const std::uint8_t> payload);
std::string read_text(std::span<const std::uint8_t> payload);
Error read_error(std::span<const std::uint8_t> payload);

// ---------------------------------------------------------------------------
// Incremental decoder

/// A complete frame lent out of the decoder's buffer. The payload span is
/// valid until the next append() (which may compact the buffer).
struct Frame {
  FrameType type = FrameType::kHello;
  std::span<const std::uint8_t> payload;
};

/// Reassembles frames from arbitrarily ragged byte arrivals. Hostile-input
/// safe: the length prefix is checked against kMaxFramePayload before any
/// buffering decision, partial frames wait for more bytes, and nothing is
/// ever read past the buffered region.
class FrameDecoder {
 public:
  /// Buffers `bytes`. Invalidates spans returned by earlier next() calls.
  void append(std::span<const std::uint8_t> bytes);

  /// Returns the next complete frame, or nullopt when more bytes are
  /// needed. Throws util::serde::DecodeError when the pending length prefix
  /// exceeds kMaxFramePayload (the connection is unrecoverable: framing is
  /// lost).
  std::optional<Frame> next();

  /// True when a complete frame is buffered and ready (an oversized length
  /// prefix also reports true so the caller reaches the throwing next()).
  bool frame_available() const noexcept;

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered_bytes() const noexcept { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace qols::server::wire
