#pragma once
// Multi-connection load generator for qols_server.
//
// run_load() opens N TCP connections, drives `sessions` concurrent wire
// sessions through OPEN -> ragged FEEDs -> FINISH, and reports achieved
// sessions/sec, symbols/sec, and p50/p99 finish latency. Phases are
// barrier-synchronized across connections: every session is OPEN before the
// first FINISH is sent, so `sessions` genuinely coexist on the server.
//
// Each session streams one of two deterministic words (an L_disj member and
// an intersecting non-member, alternating by session index) under a
// recognizer seed drawn from a small cycled pool — which is what lets a
// verifier (bench E25, or --verify in qols_load) reproduce every expected
// verdict with a handful of direct RecognizerService runs and compare the
// wire results bit for bit.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "qols/server/wire.hpp"
#include "qols/stream/symbol_stream.hpp"

namespace qols::server {

/// Which slice of each session's lifecycle this invocation drives. The
/// split phases are the restart-smoke harness: kOpenFeed against a durable
/// server, SIGTERM (the server persists), restart, then kResumeFinish
/// against the new process — verdicts must match an uninterrupted kFull run
/// bit for bit.
enum class Phase : std::uint8_t {
  kFull,          ///< OPEN -> feed the whole word -> FINISH (default)
  kOpenFeed,      ///< OPEN -> feed a deterministic prefix (half the word),
                  ///< then disconnect WITHOUT finishing
  kResumeFinish,  ///< RESUME (wire v2) -> feed the remaining suffix ->
                  ///< FINISH; expects a prior kOpenFeed run's sessions
};

struct LoadOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  unsigned connections = 8;
  /// Total sessions across all connections; all open concurrently.
  std::uint64_t sessions = 10'000;
  /// L_disj scale: word length grows like 2^k * (2 * 4^k + 3).
  unsigned k = 3;
  /// Ragged FEED chunk bounds (symbols per frame), drawn per chunk.
  std::size_t min_chunk = 16;
  std::size_t max_chunk = 512;
  /// Seeds the words, the chunk-size draws, and the recognizer seed pool.
  std::uint64_t seed = 1;
  /// Recognizer seeds cycle through this many distinct values.
  unsigned distinct_seeds = 256;
  /// Outstanding FINISH frames per connection (latency honesty: small
  /// windows measure the server, huge ones measure the socket buffer).
  std::size_t finish_window = 64;
  /// Record per-session outcomes (verdict + latency) in the report.
  bool collect_outcomes = false;
  /// HELLO kind negotiation; wire::kAnyKind accepts whatever is served.
  std::uint8_t kind_tag = wire::kAnyKind;
  /// Lifecycle slice to drive (see Phase). The prefix/suffix split point is
  /// word.size() / 2, derived from (k, seed) alone, so the two half-runs
  /// agree without sharing state.
  Phase phase = Phase::kFull;
};

/// The two deterministic words every session draws from.
struct LoadWords {
  std::vector<stream::Symbol> member;    ///< DISJ = 1: accepted
  std::vector<stream::Symbol> crossing;  ///< one intersection: rejected
};

LoadWords make_load_words(unsigned k, std::uint64_t seed);

/// Session `index` streams words.member on even indices, words.crossing on
/// odd ones.
const std::vector<stream::Symbol>& word_for_session(const LoadWords& words,
                                                    std::uint64_t index);

/// The recognizer seed session `index` opens with.
std::uint64_t seed_for_session(const LoadOptions& opts, std::uint64_t index);

struct SessionOutcome {
  std::uint64_t session_index = 0;  ///< wire id is session_index + 1
  wire::WireVerdict verdict;
  double finish_latency_ms = 0.0;
};

struct LoadReport {
  /// Sessions that returned a verdict (Phase::kOpenFeed: sessions whose
  /// OPEN the server acknowledged — that phase never finishes).
  std::uint64_t sessions = 0;
  std::uint64_t symbols = 0;   ///< symbols fed across all sessions
  std::uint64_t errors = 0;    ///< ERROR frames received
  /// Sessions held open simultaneously (== LoadOptions::sessions: the open
  /// phase completes on every connection before any FINISH is sent).
  std::uint64_t max_concurrent_sessions = 0;
  double wall_seconds = 0.0;
  double sessions_per_second = 0.0;
  double symbols_per_second = 0.0;
  double p50_finish_ms = 0.0;
  double p99_finish_ms = 0.0;
  /// Populated when LoadOptions::collect_outcomes.
  std::vector<SessionOutcome> outcomes;
};

/// Runs the load. Throws std::runtime_error / std::system_error on
/// connection failure or protocol violations by the server.
LoadReport run_load(const LoadOptions& opts);

}  // namespace qols::server
