#pragma once
// The network front end: a non-blocking, epoll-driven TCP server speaking
// the qols wire protocol (wire.hpp) over a shared RecognizerService.
//
// Threading model: ONE event-loop thread. RecognizerService's public API is
// single-acceptor by contract; parallelism lives inside flush(), which fans
// shard drains across the ThreadPool. The loop therefore never contends on
// session state — it decodes frames, hands them to each connection's
// SessionBroker, and moves bytes.
//
// Backpressure (per connection):
//   - responses accumulate in a bounded write buffer; writes are driven by
//     EPOLLOUT, never by blocking;
//   - when the write buffer crosses Config::write_buffer_cap, pump() stops
//     decoding (frames stay buffered) and the loop stops READING from that
//     connection (EPOLLIN off) until the peer drains below cap/2 — a slow
//     consumer throttles exactly itself;
//   - feed-side pressure is bounded by the service: buffered symbols
//     auto-flush across the pool at Config::flush_threshold, so a shard's
//     backlog never exceeds the threshold plus one chunk.
//
// Idle sessions: a periodic sweep (Config::sweep_interval_ms) spills
// sessions quiet for Config::idle_evict_ms onto the PR 7 snapshot codec
// (RecognizerService::evict); the next FEED/FINISH revives them
// transparently — the client cannot tell, bit for bit.
//
// Graceful drain: shutdown() (async-signal-safe; call it from a SIGTERM
// handler) stops the accept path, refuses new OPENs with kDraining, keeps
// serving FEED/FINISH until every accepted session has its verdict flushed,
// then closes everything and returns from run(). Connections that sit idle
// with no open sessions are closed as soon as their responses are flushed;
// Config::drain_timeout_ms bounds how long stragglers can hold the exit.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "qols/server/session_broker.hpp"
#include "qols/service/recognizer_service.hpp"

namespace qols::server {

class Server {
 public:
  struct Config {
    /// Recognizer family served (one family per server, like the service).
    service::RecognizerSpec spec;
    std::string bind_address = "127.0.0.1";
    /// 0 = ephemeral: the kernel picks; read it back with port().
    std::uint16_t port = 0;
    int backlog = 256;
    std::size_t max_connections = 1024;
    std::uint64_t max_sessions = std::uint64_t{1} << 17;
    /// Write-buffer high watermark per connection; reads pause above it.
    std::size_t write_buffer_cap = std::size_t{1} << 20;
    /// recv() chunk size.
    std::size_t read_chunk = std::size_t{1} << 16;
    /// RecognizerService batching threshold (symbols per shard).
    std::uint64_t flush_threshold = std::uint64_t{1} << 18;
    /// Feed via RecognizerService::feed_borrowed (zero-copy, inline).
    bool borrowed_feeds = false;
    /// Spill sessions idle this long (0 = never evict).
    std::uint64_t idle_evict_ms = 0;
    /// Timer granularity for eviction sweeps and drain checks.
    int sweep_interval_ms = 50;
    /// Hard ceiling on drain: connections still open this long after
    /// shutdown() are closed, sessions abandoned (finished and discarded).
    std::uint64_t drain_timeout_ms = 30'000;
    /// SO_SNDBUF for accepted sockets; 0 = kernel default (autotuned).
    /// Tests pin it small so backpressure triggers deterministically
    /// instead of depending on how many megabytes the kernel absorbs.
    int so_sndbuf = 0;
    /// RecognizerService spill directory ("" = unique temp dir).
    std::string spill_dir{};
    /// Durable server: the service journals session lifecycle into a
    /// manifest under spill_dir (required non-empty), the constructor
    /// recover()s any prior manifest it finds there, and disconnected
    /// clients' sessions are preserved for the v2 RESUME frame instead of
    /// abandoned.
    bool durable = false;
    /// With durable: shutdown() persists every open session (spill +
    /// manifest compaction) instead of finishing it — the restart-resume
    /// path. In-flight responses still flush before the loop exits.
    bool persist_on_shutdown = false;
    /// Pool for service flushes; nullptr = ThreadPool::global().
    util::ThreadPool* pool = nullptr;
  };

  /// Creates the listening socket (bind + listen) — the port is live when
  /// the constructor returns. Throws std::system_error on socket errors.
  explicit Server(const Config& config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (== Config::port unless that was 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Runs the event loop on the calling thread until a drain completes.
  void run();

  /// Requests a graceful drain. Async-signal-safe and thread-safe: the only
  /// work is an atomic store plus an eventfd write, so it may be called
  /// directly from a SIGTERM handler or from another thread while run()
  /// owns the loop.
  void shutdown() noexcept;

  /// The service behind the loop. Touch it only while run() is not active
  /// (the service is single-acceptor; the loop is the acceptor).
  service::RecognizerService& service() noexcept { return *svc_; }

  /// Loop-owned counters, readable after run() returns (and exported live
  /// via telemetry / the STATS frame while it runs).
  struct Counters {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_closed = 0;
    std::uint64_t accept_rejected = 0;
    std::uint64_t backpressure_pauses = 0;
    std::uint64_t sessions_abandoned = 0;
    std::uint64_t idle_evictions = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    /// Sessions re-adopted from a prior manifest by the durable ctor.
    std::uint64_t sessions_recovered = 0;
    /// Sessions persisted by the shutdown checkpoint.
    std::uint64_t sessions_persisted = 0;
  };
  const Counters& counters() const noexcept { return counters_; }

 private:
  struct Connection;

  void accept_ready();
  void connection_ready(Connection& conn, std::uint32_t events,
                        std::uint64_t now_ms);
  /// Decode+handle buffered frames within the write-budget; update the
  /// paused/closing state and epoll interest afterwards.
  void pump_connection(Connection& conn, std::uint64_t now_ms);
  bool flush_writes(Connection& conn);  // false: connection died
  void update_interest(Connection& conn);
  void close_connection(int fd);
  void sweep(std::uint64_t now_ms);
  void begin_drain(std::uint64_t now_ms);
  static std::uint64_t now_ms() noexcept;

  Config config_;
  std::unique_ptr<service::RecognizerService> svc_;
  std::unique_ptr<BrokerShared> shared_;
  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> shutdown_requested_{false};
  bool draining_ = false;
  std::uint64_t drain_deadline_ms_ = 0;
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  Counters counters_;
};

}  // namespace qols::server
