#pragma once
// Per-connection protocol engine: wire bytes in, wire bytes out.
//
// SessionBroker owns no sockets — the epoll transport (server.hpp), the
// fuzz harness (property P8), and the unit tests all drive the same code:
// ingest() buffers raw bytes, pump() decodes complete frames and handles
// them against the shared RecognizerService, appending response frames to
// the caller's output buffer.
//
// Contract: hostile input NEVER throws out of pump(). Malformed bytes
// (oversized length prefix, undecodable payload, invalid symbol byte,
// frames out of order) produce a typed ERROR frame and PumpResult::kClose;
// recoverable conditions (unknown session, duplicate OPEN, over-limit,
// draining) produce an ERROR frame and the connection lives on.
//
// Determinism: a session's verdict depends only on its seed and the symbol
// bytes fed to it, in order — never on how those bytes were split across
// FEED frames or ingest() calls (fuzz property P8 enforces this against
// direct RecognizerService runs).
//
// Wire session ids ARE service session ids (RecognizerService::open_at), so
// there is no translation table; the broker tracks which ids this
// connection owns and refuses to touch another connection's sessions.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "qols/server/wire.hpp"
#include "qols/service/recognizer_service.hpp"
#include "qols/telemetry/registry.hpp"

namespace qols::server {

/// State shared by every broker of one server: the service, the limits, and
/// the drain flag. Single-threaded like the service's acceptor contract.
struct BrokerShared {
  struct Options {
    /// Sessions across ALL connections (the service-wide cap).
    std::uint64_t max_sessions = std::uint64_t{1} << 17;
    /// Feed through RecognizerService::feed_borrowed (zero-copy, inline on
    /// the calling thread) instead of feed() (copied, batched across the
    /// pool by flush_threshold). Verdicts are bit-identical either way.
    bool borrowed_feeds = false;
    /// On disconnect, RELEASE sessions (leave them open in the service for
    /// a later RESUME — the durable-server mode) instead of finishing and
    /// discarding them. Orphaned sessions still count against max_sessions
    /// and are reaped only by persist()/restart or an adopting RESUME.
    bool preserve_on_disconnect = false;
  };

  explicit BrokerShared(service::RecognizerService& service, Options options);

  service::RecognizerService& svc;
  Options opts;
  /// Set by the server on SIGTERM/shutdown(): OPEN is refused with
  /// kDraining; FEED/FINISH keep working so in-flight sessions complete.
  bool draining = false;
  /// Optional transport hook: called with the STATS document so the server
  /// can append its own section (connections, backpressure pauses, ...).
  std::function<void(util::json::Value&)> stats_hook;
  /// Session ids owned by SOME live connection of this server. RESUME may
  /// only adopt a session no live connection owns — two connections driving
  /// one recognizer would interleave their symbols nondeterministically.
  std::unordered_set<std::uint64_t> owned;

  /// Frame-grain instruments, resolved once for the whole server.
  telemetry::Counter& frames_in;
  telemetry::Counter& frames_out;
  telemetry::Counter& errors_sent;
  telemetry::Counter& malformed;
  telemetry::Counter& resumes;
  telemetry::LatencyHistogram& feed_frame_ns;
  telemetry::LatencyHistogram& finish_frame_ns;
};

class SessionBroker {
 public:
  enum class PumpResult : std::uint8_t {
    kIdle,       ///< no complete frame buffered; feed more bytes
    kOutBudget,  ///< stopped early: output grew past the budget (backpressure)
    kClose,      ///< fatal: flush `out`, then close the connection
  };

  explicit SessionBroker(BrokerShared& shared);
  /// Abandons (finishes and discards) any sessions still open — or, with
  /// Options::preserve_on_disconnect, releases them for a later RESUME.
  ~SessionBroker();

  SessionBroker(const SessionBroker&) = delete;
  SessionBroker& operator=(const SessionBroker&) = delete;

  /// Buffers raw wire bytes; frames are handled by the next pump().
  void ingest(std::span<const std::uint8_t> bytes);

  /// Decodes and handles buffered frames in order, appending responses to
  /// `out`, until no complete frame remains or out.size() reaches
  /// `out_budget` (the transport's write-buffer cap — remaining frames stay
  /// buffered for the next pump, which is what "stop reading under
  /// backpressure" hangs off). `now_ms` stamps session activity for idle
  /// eviction; any monotonic milli-clock works, 0 is fine for tests.
  PumpResult pump(std::vector<std::uint8_t>& out, std::size_t out_budget,
                  std::uint64_t now_ms = 0);

  /// A complete frame is buffered and unprocessed (pump stopped on budget).
  bool has_buffered_frames() const noexcept;
  std::size_t buffered_bytes() const noexcept;

  /// Evicts sessions (RecognizerService::evict) whose last activity is at
  /// or before `cutoff_ms`. Returns how many were spilled. A session whose
  /// recognizer cannot snapshot is skipped and not retried until its next
  /// activity refreshes the stamp.
  std::size_t evict_idle(std::uint64_t cutoff_ms);

  std::size_t open_sessions() const noexcept { return sessions_.size(); }
  bool hello_done() const noexcept { return hello_done_; }
  bool closed() const noexcept { return closed_; }
  /// Protocol version negotiated by HELLO (0 before HELLO).
  std::uint32_t negotiated_version() const noexcept { return version_; }

  /// Peer went away: with preserve_on_disconnect, release_sessions();
  /// otherwise finishes and discards every session this connection still
  /// owns. Returns how many sessions were handled either way.
  std::size_t abandon_sessions() noexcept;

  /// Detaches every session from this connection WITHOUT finishing it — the
  /// sessions stay open (and adoptable via RESUME) in the service. Returns
  /// how many were released.
  std::size_t release_sessions() noexcept;

 private:
  /// Handles one frame; returns false when the connection must close.
  bool handle(const wire::Frame& frame, std::vector<std::uint8_t>& out,
              std::uint64_t now_ms);
  bool fail(std::vector<std::uint8_t>& out, wire::ErrorCode code,
            std::uint64_t session, std::string message);

  BrokerShared& shared_;
  wire::FrameDecoder decoder_;
  /// Wire/service session id -> last-activity stamp (ms, caller's clock).
  std::unordered_map<std::uint64_t, std::uint64_t> sessions_;
  bool hello_done_ = false;
  bool closed_ = false;
  std::uint32_t version_ = 0;  ///< negotiated by HELLO
};

}  // namespace qols::server
