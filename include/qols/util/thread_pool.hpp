#pragma once
// Minimal fixed-size thread pool and a blocking parallel_for built on it.
//
// The state-vector kernels in qols::quantum are embarrassingly parallel over
// contiguous amplitude ranges; parallel_for slices the index space into
// per-worker chunks. We use explicit threads (rather than OpenMP pragmas) so
// the scheduling is deterministic per (range, thread-count) pair, which keeps
// floating-point reductions reproducible across runs.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace qols::util {

/// Fixed set of worker threads consuming a shared task queue.
/// Tasks are std::function<void()>; submit() is thread-safe.
class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution by any worker.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle();

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// True when the calling thread is one of this pool's workers. parallel_for
  /// uses this to degrade to an inline loop instead of deadlocking: a worker
  /// that submitted chunks to its own pool and then blocked in wait_idle()
  /// would count itself as forever-active. This is what makes nesting safe —
  /// e.g. TrialEngine shards trials over the pool while each trial's
  /// state-vector kernels call parallel_for on the same pool.
  bool on_worker_thread() const noexcept;

  /// Process-wide shared pool (lazily constructed with default size).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Runs fn(begin, end) over [begin, end) split into contiguous chunks across
/// the pool. Blocks until every chunk completes. Ranges smaller than
/// `grain` run inline on the calling thread (avoids task overhead on the
/// tiny registers used for small k).
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn);

/// Convenience overload on the global pool.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace qols::util
