#pragma once
// 64-bit modular arithmetic and primality, used by the fingerprint module.
//
// Procedure A2 of the paper evaluates polynomials over Z_p for a prime p in
// the interval (2^{4k}, 2^{4k+1}). For k up to 15 that means p < 2^{61}, so
// products need 128-bit intermediates; we use the compiler's __int128.

#include <cstdint>
#include <optional>

namespace qols::util {

/// (a + b) mod m, assuming a, b < m < 2^63.
constexpr std::uint64_t addmod(std::uint64_t a, std::uint64_t b,
                               std::uint64_t m) noexcept {
  const std::uint64_t s = a + b;
  return s >= m ? s - m : s;
}

/// (a - b) mod m, assuming a, b < m.
constexpr std::uint64_t submod(std::uint64_t a, std::uint64_t b,
                               std::uint64_t m) noexcept {
  return a >= b ? a - b : a + (m - b);
}

/// (a * b) mod m via 128-bit intermediate.
constexpr std::uint64_t mulmod(std::uint64_t a, std::uint64_t b,
                               std::uint64_t m) noexcept {
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(a) * b) % m);
}

/// a^e mod m by square-and-multiply.
constexpr std::uint64_t powmod(std::uint64_t a, std::uint64_t e,
                               std::uint64_t m) noexcept {
  std::uint64_t result = 1 % m;
  a %= m;
  while (e > 0) {
    if (e & 1ULL) result = mulmod(result, a, m);
    a = mulmod(a, a, m);
    e >>= 1;
  }
  return result;
}

/// Montgomery multiplication context for an odd modulus 2 < m < 2^63.
///
/// mulmod above compiles to a 128-by-64-bit division (libgcc's __umodti3 on
/// x86-64), which dominates the per-bit cost of streaming fingerprints.
/// Montgomery REDC replaces the division with three multiplications, so the
/// batched Horner pass of PolyFingerprint::feed_counted_bulk runs several
/// times faster while producing the exact same canonical residues — values
/// round-trip through the Montgomery domain losslessly.
class Montgomery {
 public:
  explicit Montgomery(std::uint64_t m) noexcept : m_(m) {
    // m^{-1} mod 2^64 by Newton iteration: x <- x(2 - m x) doubles the
    // number of correct low bits; odd m starts with 3 (m*m = 1 mod 8).
    std::uint64_t inv = m;
    for (int i = 0; i < 5; ++i) inv *= 2 - m * inv;
    neg_inv_ = ~inv + 1;  // -m^{-1} mod 2^64
    const auto r =
        static_cast<std::uint64_t>((static_cast<__uint128_t>(1) << 64) % m);
    r2_ = static_cast<std::uint64_t>((static_cast<__uint128_t>(r) * r) % m);
  }

  /// REDC(a * b): for a, b < m returns (a * b * 2^{-64}) mod m, < m.
  std::uint64_t mul(std::uint64_t a, std::uint64_t b) const noexcept {
    const __uint128_t t = static_cast<__uint128_t>(a) * b;
    const std::uint64_t q = static_cast<std::uint64_t>(t) * neg_inv_;
    const auto r = static_cast<std::uint64_t>(
        (t + static_cast<__uint128_t>(q) * m_) >> 64);
    return r >= m_ ? r - m_ : r;
  }

  /// x -> x * 2^64 mod m (entry into the Montgomery domain).
  std::uint64_t to_mont(std::uint64_t x) const noexcept {
    return mul(x % m_, r2_);
  }
  /// x * 2^64 mod m -> x (canonical residue in [0, m)).
  std::uint64_t from_mont(std::uint64_t x) const noexcept { return mul(x, 1); }

  std::uint64_t modulus() const noexcept { return m_; }

 private:
  std::uint64_t m_;
  std::uint64_t neg_inv_;
  std::uint64_t r2_;
};

/// Deterministic Miller–Rabin for 64-bit integers (the standard 12-base set
/// {2,3,5,7,11,13,17,19,23,29,31,37} is exact for all n < 3.3 * 10^24).
bool is_prime_u64(std::uint64_t n) noexcept;

/// Smallest prime p with lo < p < hi, or nullopt if none exists.
/// This is the paper's "naive strategy consisting in trying all the numbers
/// between 2^{4k} and 2^{4k+1}" — except each candidate is tested with
/// Miller–Rabin rather than trial division.
std::optional<std::uint64_t> first_prime_in_open_interval(
    std::uint64_t lo, std::uint64_t hi) noexcept;

/// The paper's specific interval: smallest prime in (2^{4k}, 2^{4k+1}).
/// Requires 1 <= k <= 15 (so the interval fits in 64 bits). By Bertrand's
/// postulate the interval always contains a prime.
std::uint64_t fingerprint_prime(unsigned k) noexcept;

/// Number of candidates examined by first_prime_in_open_interval before the
/// returned prime (for the E6 prime-search-cost column).
struct PrimeSearchStats {
  std::uint64_t prime = 0;
  std::uint64_t candidates_tested = 0;
};
PrimeSearchStats fingerprint_prime_stats(unsigned k) noexcept;

}  // namespace qols::util
