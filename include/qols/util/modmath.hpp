#pragma once
// 64-bit modular arithmetic and primality, used by the fingerprint module.
//
// Procedure A2 of the paper evaluates polynomials over Z_p for a prime p in
// the interval (2^{4k}, 2^{4k+1}). For k up to 15 that means p < 2^{61}, so
// products need 128-bit intermediates; we use the compiler's __int128.

#include <cstdint>
#include <optional>

namespace qols::util {

/// (a + b) mod m, assuming a, b < m < 2^63.
constexpr std::uint64_t addmod(std::uint64_t a, std::uint64_t b,
                               std::uint64_t m) noexcept {
  const std::uint64_t s = a + b;
  return s >= m ? s - m : s;
}

/// (a - b) mod m, assuming a, b < m.
constexpr std::uint64_t submod(std::uint64_t a, std::uint64_t b,
                               std::uint64_t m) noexcept {
  return a >= b ? a - b : a + (m - b);
}

/// (a * b) mod m via 128-bit intermediate.
constexpr std::uint64_t mulmod(std::uint64_t a, std::uint64_t b,
                               std::uint64_t m) noexcept {
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(a) * b) % m);
}

/// a^e mod m by square-and-multiply.
constexpr std::uint64_t powmod(std::uint64_t a, std::uint64_t e,
                               std::uint64_t m) noexcept {
  std::uint64_t result = 1 % m;
  a %= m;
  while (e > 0) {
    if (e & 1ULL) result = mulmod(result, a, m);
    a = mulmod(a, a, m);
    e >>= 1;
  }
  return result;
}

/// Deterministic Miller–Rabin for 64-bit integers (the standard 12-base set
/// {2,3,5,7,11,13,17,19,23,29,31,37} is exact for all n < 3.3 * 10^24).
bool is_prime_u64(std::uint64_t n) noexcept;

/// Smallest prime p with lo < p < hi, or nullopt if none exists.
/// This is the paper's "naive strategy consisting in trying all the numbers
/// between 2^{4k} and 2^{4k+1}" — except each candidate is tested with
/// Miller–Rabin rather than trial division.
std::optional<std::uint64_t> first_prime_in_open_interval(
    std::uint64_t lo, std::uint64_t hi) noexcept;

/// The paper's specific interval: smallest prime in (2^{4k}, 2^{4k+1}).
/// Requires 1 <= k <= 15 (so the interval fits in 64 bits). By Bertrand's
/// postulate the interval always contains a prime.
std::uint64_t fingerprint_prime(unsigned k) noexcept;

/// Number of candidates examined by first_prime_in_open_interval before the
/// returned prime (for the E6 prime-search-cost column).
struct PrimeSearchStats {
  std::uint64_t prime = 0;
  std::uint64_t candidates_tested = 0;
};
PrimeSearchStats fingerprint_prime_stats(unsigned k) noexcept;

}  // namespace qols::util
