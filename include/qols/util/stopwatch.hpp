#pragma once
// Wall-clock stopwatch for coarse experiment timing (benchmarks proper use
// google-benchmark; this is for harness-level reporting).

#include <chrono>

namespace qols::util {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace qols::util
