#pragma once
// Small statistics helpers for the experiment harnesses: streaming moments
// and Wilson score intervals for the Monte-Carlo acceptance rates.

#include <cstdint>

namespace qols::util {

/// Streaming mean / variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const noexcept;
  /// Standard error of the mean.
  double sem() const noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Two-sided Wilson score interval for a binomial proportion.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  bool contains(double p) const noexcept { return lo <= p && p <= hi; }
};

/// successes out of trials, with normal quantile z (1.96 ~ 95%, 2.58 ~ 99%,
/// 3.29 ~ 99.9%). trials must be >= 1.
Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double z = 1.96) noexcept;

}  // namespace qols::util
