#pragma once
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the frame check
// behind the session manifest's record framing. Table-driven, one byte per
// step; the table is computed at compile time so the header stays
// self-contained (no generated source, no init-order concerns).

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace qols::util {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ 0xedb8'8320u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// CRC-32 of `data`. `seed` chains multi-buffer checksums: crc32(ab) ==
/// crc32(b, crc32(a)). The empty-input CRC is 0 (with the default seed).
constexpr std::uint32_t crc32(std::span<const std::uint8_t> data,
                              std::uint32_t seed = 0) {
  std::uint32_t crc = ~seed;
  for (const std::uint8_t byte : data) {
    crc = (crc >> 8) ^ detail::kCrc32Table[(crc ^ byte) & 0xffu];
  }
  return ~crc;
}

}  // namespace qols::util
