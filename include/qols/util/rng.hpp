#pragma once
// Deterministic, seedable pseudo-random number generation.
//
// All randomized components in qols (the probabilistic Turing machine's coin
// flips, fingerprint evaluation points, planted-instance generators, Monte
// Carlo drivers) draw from explicitly passed generators so that every
// experiment in EXPERIMENTS.md is reproducible from its seed.

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace qols::util {

/// SplitMix64: a tiny, statistically solid 64-bit generator. Used mainly to
/// expand a single user seed into the larger state of Xoshiro256StarStar.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 pseudo-random bits.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna: the project-wide workhorse generator.
/// Satisfies UniformRandomBitGenerator, so it plugs into <random> adapters,
/// but the convenience members below avoid distribution-object overhead in
/// hot loops.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64,
  /// as recommended by the xoshiro authors.
  explicit Xoshiro256StarStar(std::uint64_t seed = 0x8f1e3a2bc45d9701ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint64_t operator()() noexcept { return next(); }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Unbiased uniform integer in [0, bound) via Lemire's multiply-shift
  /// rejection method. bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// One uniformly random bit.
  bool coin() noexcept { return (next() & 1ULL) != 0; }

  /// n independent uniform bits as a bool vector (handy for random inputs x,y).
  std::vector<bool> bits(std::size_t n);

  /// Equivalent of 2^128 next() calls; yields independent parallel streams.
  void jump() noexcept;

  /// Derives an independent child generator (seeded from this stream).
  Xoshiro256StarStar split() noexcept { return Xoshiro256StarStar(next()); }

  /// The full 256-bit state, for recognizer snapshot/restore: a restored
  /// generator continues the exact sequence the snapshotted one would have
  /// produced. Not an entropy interface — do not derive seeds from it.
  std::array<std::uint64_t, 4> state() const noexcept { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    state_ = s;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Default project RNG alias; experiments name seeds explicitly.
using Rng = Xoshiro256StarStar;

}  // namespace qols::util
