#pragma once
// Packed bit vector used for the m-bit strings x, y of the disjointness
// instances (m = 2^{2k} reaches 2^20 at k = 10; packing matters).

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "qols/util/rng.hpp"

namespace qols::util {

/// Fixed-length sequence of bits packed 64 per word.
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t n, bool fill = false);

  /// Parses a string of '0'/'1' characters.
  static BitVec from_string(const std::string& s);

  /// n independent uniform bits.
  static BitVec random(std::size_t n, Rng& rng);

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  bool get(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }
  void set(std::size_t i, bool v) noexcept {
    const std::uint64_t mask = 1ULL << (i & 63);
    if (v) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  /// Number of set bits.
  std::size_t popcount() const noexcept;

  /// Number of indices i with this->get(i) && other.get(i) — i.e. the size
  /// of the intersection; DISJ(x, y) = 1 iff and_popcount(x, y) == 0.
  std::size_t and_popcount(const BitVec& other) const noexcept;

  /// Indices of set bits (ascending).
  std::vector<std::size_t> ones() const;

  /// Renders as a '0'/'1' string (index 0 first, matching the paper's
  /// left-to-right streaming order x_0 x_1 ... x_{m-1}).
  std::string to_string() const;

  bool operator==(const BitVec& other) const noexcept = default;

  /// Raw packed words (ceil(size/64) of them), for snapshot serialization.
  std::span<const std::uint64_t> words() const noexcept { return words_; }

  /// Rebuilds a BitVec from its size and packed words (the inverse of
  /// words()). Throws std::invalid_argument when the word count does not
  /// match the size — a malformed snapshot, not a programming error path.
  static BitVec from_words(std::size_t n, std::vector<std::uint64_t> words);

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace qols::util
