#pragma once
// Console table writer for the experiment harness.
//
// Every bench binary prints its results as an aligned text table (the
// "rows/series the paper reports"); Table also emits CSV so results can be
// collected into EXPERIMENTS.md mechanically.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace qols::util {

/// Column-aligned text/CSV table. Cells are strings; use the fmt helpers
/// below for numbers.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Aligned, boxed rendering for terminals.
  std::string to_text() const;

  /// RFC-4180-ish CSV (no quoting needed: cells never contain commas).
  std::string to_csv() const;

  /// Prints to_text() to the stream with an optional caption line.
  void print(std::ostream& os, const std::string& caption = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("0.2500").
std::string fmt_f(double v, int precision = 4);
/// Integer with thousands separators ("1,048,576").
std::string fmt_g(std::uint64_t v);
/// Scientific-ish compact formatting for wide ranges.
std::string fmt_sci(double v);

}  // namespace qols::util
