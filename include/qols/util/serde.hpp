#pragma once
// Little-endian byte-buffer codec for recognizer snapshots.
//
// Every OnlineRecognizer::snapshot() payload is written through ByteWriter
// and read back through ByteReader. The format is deliberately dumb: fixed
// little-endian integer widths, IEEE-754 bit patterns for floating point
// (exact round-trip — restore is bit-identical, never re-rounded), and
// length-prefixed containers. No varints, no alignment, no versioning here;
// the snapshot header (magic + format version + recognizer kind) lives in
// machine/online_recognizer.hpp, where the recognizer contract is defined.

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace qols::util::serde {

/// Thrown by ByteReader on truncated, oversized, or malformed input. Derives
/// from std::invalid_argument so callers can treat "bad snapshot bytes" and
/// "bad header" uniformly.
class DecodeError : public std::invalid_argument {
 public:
  explicit DecodeError(const std::string& what)
      : std::invalid_argument("snapshot decode: " + what) {}
};

/// Append-only little-endian encoder.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void b(bool v) { u8(v ? 1 : 0); }
  /// IEEE bit pattern — exact round-trip, including NaN payloads and -0.0.
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }

  void u64_vec(std::span<const std::uint64_t> v) {
    u64(v.size());
    for (const std::uint64_t x : v) u64(x);
  }

  std::size_t size() const noexcept { return buf_.size(); }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Matching decoder over a borrowed byte span. Every read is bounds-checked;
/// underflow throws DecodeError instead of reading garbage.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    need(1);
    return bytes_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{bytes_[pos_++]} << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes_[pos_++]} << (8 * i);
    return v;
  }
  bool b() {
    const std::uint8_t v = u8();
    if (v > 1) throw DecodeError("bool field out of range");
    return v != 0;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  float f32() { return std::bit_cast<float>(u32()); }

  std::vector<std::uint64_t> u64_vec() {
    const std::uint64_t n = u64();
    // 8 bytes per element must still fit in what remains — rejects a forged
    // length before the allocation, not after.
    if (n > remaining() / 8) throw DecodeError("vector length exceeds payload");
    std::vector<std::uint64_t> v;
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(u64());
    return v;
  }

  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  bool exhausted() const noexcept { return pos_ == bytes_.size(); }
  /// Restore must consume the payload exactly; trailing bytes mean the
  /// snapshot and the code disagree about the format.
  void expect_exhausted() const {
    if (!exhausted()) throw DecodeError("trailing bytes after payload");
  }

 private:
  void need(std::size_t n) const {
    if (bytes_.size() - pos_ < n) throw DecodeError("payload truncated");
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace qols::util::serde
