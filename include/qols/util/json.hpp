#pragma once
// Minimal dependency-free JSON document builder for the machine-readable
// bench output (BENCH_*.json). Write-only by design: the repo never parses
// JSON, it only emits records that downstream tooling (CI artifact
// validation, plotting scripts) consumes.
//
//   auto doc = json::Value::object();
//   doc.set("schema", "qols-bench/1");
//   auto& rows = doc.set("rows", json::Value::array());
//   rows.push_back(json::Value{0.25});
//   std::string text = doc.dump(2);
//
// Objects preserve insertion order (stable diffs across runs); non-finite
// doubles serialize as null (JSON has no NaN/Inf).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace qols::util::json {

/// A JSON value: null, bool, number, string, array, or object.
class Value {
 public:
  Value() : kind_(Kind::kNull) {}
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(double d) : kind_(Kind::kDouble), double_(d) {}
  Value(std::int64_t i) : kind_(Kind::kInt), int_(i) {}
  Value(std::uint64_t u) : kind_(Kind::kUint), uint_(u) {}
  Value(int i) : Value(static_cast<std::int64_t>(i)) {}
  Value(unsigned u) : Value(static_cast<std::uint64_t>(u)) {}
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  Value(const char* s) : Value(std::string(s)) {}

  static Value object() { return Value(Kind::kObject); }
  static Value array() { return Value(Kind::kArray); }

  bool is_object() const noexcept { return kind_ == Kind::kObject; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }

  /// Object member insertion/overwrite; returns the stored value. The value
  /// must be an object.
  Value& set(const std::string& key, Value v);

  /// Array append; the value must be an array.
  Value& push_back(Value v);

  std::size_t size() const noexcept;

  /// Serializes the document. indent <= 0 gives compact one-line output.
  std::string dump(int indent = 2) const;

  /// JSON string escaping of `raw` including the surrounding quotes.
  static std::string quote(const std::string& raw);

 private:
  enum class Kind { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  explicit Value(Kind k) : kind_(k) {}
  void write(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

}  // namespace qols::util::json
