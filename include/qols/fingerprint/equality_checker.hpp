#pragma once
// Procedure A2 (proof of Theorem 3.4): a one-sided-error streaming check of
// the consistency conditions, assuming shape condition (i):
//
//   (ii)  x(1) = z(1) = x(2) = z(2) = ... = x(2^k) = z(2^k)
//   (iii) y(1) = y(2) = ... = y(2^k)
//
// It draws one random evaluation point t in {0,...,p-1} for a prime
// p in (2^{4k}, 2^{4k+1}) and compares polynomial fingerprints: within each
// repetition F_x = F_z, and across adjacent repetitions F_x(i) = F_x(i+1),
// F_y(i) = F_y(i+1). If (ii) and (iii) hold every test passes with
// probability 1; if either fails, some test catches it except with
// probability < 2^{-2k} over t.
//
// Work memory: O(k) bits — a handful of field elements of 4k+1 bits each.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

#include "qols/fingerprint/poly_fingerprint.hpp"
#include "qols/stream/symbol_stream.hpp"
#include "qols/util/rng.hpp"

namespace qols::fingerprint {

class EqualityChecker {
 public:
  /// The checker owns a child RNG so the evaluation point t is drawn
  /// independently of other randomized components.
  ///
  /// `field_exponent` selects the prime interval (2^{qk}, 2^{qk+1}) with
  /// q = field_exponent. The paper uses q = 4 (error < 2^{-2k}); the E14
  /// ablation sweeps q to show why: q = 2 only bounds the PER-TEST error by
  /// ~(m-1)/p < 1, which the 3*2^k tests then amplify. Requires q in [2, 6].
  explicit EqualityChecker(util::Rng rng, unsigned field_exponent = 4)
      : rng_(rng), field_exponent_(field_exponent) {}

  /// Consumes one symbol of the word (the same stream A1 sees). On words
  /// violating shape (i) the behaviour is unspecified-but-safe: A1 rejects
  /// the word anyway.
  void feed(stream::Symbol s);

  /// Consumes a run of symbols; fingerprint values — and therefore every
  /// pass/fail outcome — are bit-identical to per-symbol feeding. Runs of
  /// data bits go through PolyFingerprint's batched Horner pass (Montgomery
  /// multiplication instead of a 128-bit division per bit), which is the
  /// single largest win of chunked ingestion: A2 touches every bit of the
  /// word, so its per-bit cost bounds any recognizer's line rate.
  void feed_chunk(std::span<const stream::Symbol> chunk);

  /// True iff every fingerprint comparison made so far passed. Valid after
  /// the stream ends; on a shape-valid word this is the paper's A2 output.
  bool passed() const noexcept { return !failed_; }

  /// The prime in (2^{4k}, 2^{4k+1}) in use (after the prefix was read).
  std::optional<std::uint64_t> prime() const noexcept {
    return active_ ? std::optional<std::uint64_t>(p_) : std::nullopt;
  }
  /// The random evaluation point t.
  std::optional<std::uint64_t> point() const noexcept {
    return active_ ? std::optional<std::uint64_t>(t_) : std::nullopt;
  }

  /// Work-memory footprint in bits: 8 field elements of (4k+1) bits plus the
  /// block counter, once k is known.
  std::uint64_t classical_bits_used() const noexcept;

  /// Serializes the full mid-stream state including the child RNG, so a
  /// restored checker draws the identical future evaluation points.
  void snapshot_to(util::serde::ByteWriter& w) const;
  void restore_from(util::serde::ByteReader& r);

 private:
  util::Rng rng_;
  unsigned field_exponent_;
  bool failed_ = false;

  // Prefix parsing (duplicates A1's tiny counter; the procedures run in
  // parallel on the same stream and may not share tape cells).
  bool in_prefix_ = true;
  unsigned k_ = 0;
  bool active_ = false;

  std::uint64_t p_ = 0;
  std::uint64_t t_ = 0;
  std::optional<PolyFingerprint> current_;
  std::uint64_t block_index_ = 0;  // 0-based over all blocks

  // Fingerprints retained across block boundaries.
  std::optional<std::uint64_t> cur_x_, cur_y_;
  std::optional<std::uint64_t> prev_x_, prev_y_;

  void on_block_end();
};

}  // namespace qols::fingerprint
