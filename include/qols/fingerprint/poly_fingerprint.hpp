#pragma once
// Streaming polynomial fingerprints over Z_p (the string-equality primitive
// behind procedure A2).
//
// For w = w_0 w_1 ... w_{m-1} in {0,1}^m the fingerprint at evaluation point
// t is  F_w(t) = sum_i w_i t^i mod p. Two distinct strings of length m agree
// on a uniformly random t with probability at most (m-1)/p (a nonzero
// polynomial of degree < m has < m roots). The paper takes p prime with
// 2^{4k} < p < 2^{4k+1} and m = 2^{2k}, so the collision probability is
// below 2^{-2k}.

#include <cstdint>

#include "qols/util/modmath.hpp"

namespace qols::fingerprint {

/// Incremental evaluator of F_w(t) mod p; feed bits left to right.
/// Work memory: three field elements (accumulator, t^i, and t itself).
class PolyFingerprint {
 public:
  PolyFingerprint(std::uint64_t p, std::uint64_t t) noexcept
      : p_(p), t_(t % p), tpow_(1 % p) {}

  /// Consumes the next bit w_i.
  void feed(bool bit) noexcept {
    if (bit) acc_ = util::addmod(acc_, tpow_, p_);
    tpow_ = util::mulmod(tpow_, t_, p_);
  }

  /// Current value of F_{w_0..w_{i-1}}(t).
  std::uint64_t value() const noexcept { return acc_; }

  /// Number of bits consumed so far.
  std::uint64_t length() const noexcept { return fed_; }

  /// Restarts for a fresh string at the same (p, t).
  void reset() noexcept {
    acc_ = 0;
    tpow_ = 1 % p_;
    fed_ = 0;
  }

  /// Consumes the next bit and counts it (convenience used by A2's block
  /// scanner, which also needs lengths).
  void feed_counted(bool bit) noexcept {
    feed(bit);
    ++fed_;
  }

  std::uint64_t modulus() const noexcept { return p_; }
  std::uint64_t point() const noexcept { return t_; }

 private:
  std::uint64_t p_;
  std::uint64_t t_;
  std::uint64_t tpow_;
  std::uint64_t acc_ = 0;
  std::uint64_t fed_ = 0;
};

/// One-shot fingerprint of a whole bit string (testing convenience).
template <typename BitRange>
std::uint64_t fingerprint_of(const BitRange& bits, std::uint64_t p,
                             std::uint64_t t) noexcept {
  PolyFingerprint f(p, t);
  for (bool b : bits) f.feed(b);
  return f.value();
}

}  // namespace qols::fingerprint
