#pragma once
// Streaming polynomial fingerprints over Z_p (the string-equality primitive
// behind procedure A2).
//
// For w = w_0 w_1 ... w_{m-1} in {0,1}^m the fingerprint at evaluation point
// t is  F_w(t) = sum_i w_i t^i mod p. Two distinct strings of length m agree
// on a uniformly random t with probability at most (m-1)/p (a nonzero
// polynomial of degree < m has < m roots). The paper takes p prime with
// 2^{4k} < p < 2^{4k+1} and m = 2^{2k}, so the collision probability is
// below 2^{-2k}.

#include <cstddef>
#include <cstdint>
#include <optional>

#include "qols/util/modmath.hpp"
#include "qols/util/serde.hpp"

namespace qols::fingerprint {

/// Incremental evaluator of F_w(t) mod p; feed bits left to right.
/// Work memory: three field elements (accumulator, t^i, and t itself).
class PolyFingerprint {
 public:
  PolyFingerprint(std::uint64_t p, std::uint64_t t) noexcept
      : p_(p), t_(t % p), tpow_(1 % p) {
    // The batched path needs an odd modulus below 2^63 (Montgomery's REDC
    // bound); the paper's primes (p < 2^61) always qualify. Anything else
    // falls back to the exact per-bit path. t and p never change, so the
    // batch constants are computed once here, not per bulk call.
    if ((p & 1) != 0 && p > 2 && p < (std::uint64_t{1} << 63)) {
      mont_.emplace(p);
      tm_ = mont_->to_mont(t_);
      const std::uint64_t t2m = mont_->mul(tm_, tm_);
      const std::uint64_t t4m = mont_->mul(t2m, t2m);
      t8m_ = mont_->mul(t4m, t4m);
      one_m_ = mont_->to_mont(1);
    }
  }

  /// Consumes the next bit w_i.
  void feed(bool bit) noexcept {
    if (bit) acc_ = util::addmod(acc_, tpow_, p_);
    tpow_ = util::mulmod(tpow_, t_, p_);
  }

  /// Current value of F_{w_0..w_{i-1}}(t).
  std::uint64_t value() const noexcept { return acc_; }

  /// Number of bits consumed so far.
  std::uint64_t length() const noexcept { return fed_; }

  /// Restarts for a fresh string at the same (p, t).
  void reset() noexcept {
    acc_ = 0;
    tpow_ = 1 % p_;
    fed_ = 0;
  }

  /// Consumes the next bit and counts it (convenience used by A2's block
  /// scanner, which also needs lengths).
  void feed_counted(bool bit) noexcept {
    feed(bit);
    ++fed_;
  }

  /// Batched equivalent of `count` feed_counted() calls over bits[0..count):
  /// each byte is one bit (nonzero = 1). The chunk polynomial is Horner-
  /// evaluated in the Montgomery domain over eight interleaved lanes (t^8
  /// steps): REDC replaces the per-bit 128-bit division of mulmod with
  /// three multiplications, the lanes break its serial dependency chain
  /// (throughput-bound instead of latency-bound), and the lane updates are
  /// branchless selects (random input bits would otherwise mispredict).
  /// The accumulator and t-power stay canonical residues, so interleaving
  /// bulk and per-bit feeding is exact: results are bit-identical.
  void feed_counted_bulk(const std::uint8_t* bits, std::size_t count) noexcept {
    if (count == 0) return;
    if (!mont_) {  // even/degenerate modulus: fall back to the per-bit path
      for (std::size_t i = 0; i < count; ++i) feed_counted(bits[i] != 0);
      return;
    }
    // Copy the batch constants (and the Montgomery context itself) into
    // locals: `bits` is a byte pointer, which may alias *this as far as the
    // optimizer knows, so member loads would not be hoisted out of the
    // per-group loop.
    const util::Montgomery mont = *mont_;
    const std::uint64_t p = p_;
    const std::uint64_t tm = tm_;
    const std::uint64_t t8m = t8m_;
    const std::uint64_t one_m = one_m_;
    // Lane r accumulates H_r(t^8) over positions congruent to r mod 8,
    // Horner-stepped from the top group down. The top (possibly ragged)
    // group seeds the lanes with bounds checks; every later group is a
    // full, check-free block of eight.
    std::uint64_t h[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    std::size_t g = (count + 7) / 8;
    {
      --g;
      const std::size_t base = 8 * g;
      for (std::size_t r = 0; r < 8 && base + r < count; ++r) {
        if (bits[base + r] != 0) h[r] = one_m;
      }
    }
    while (g-- > 0) {
      const std::uint8_t* b = bits + 8 * g;
      for (std::size_t r = 0; r < 8; ++r) {
        const std::uint64_t add = b[r] != 0 ? one_m : 0;  // select, no branch
        h[r] = util::addmod(mont.mul(h[r], t8m), add, p);
      }
    }
    // H = h0 + t h1 + ... + t^7 h7, then fold: acc += t^i0 * H.
    std::uint64_t hm = h[7];
    for (std::size_t r = 7; r-- > 0;) {
      hm = util::addmod(mont.mul(hm, tm), h[r], p);
    }
    const std::uint64_t hval = mont.from_mont(hm);
    acc_ = util::addmod(acc_, util::mulmod(tpow_, hval, p), p);
    // t^count by square-and-multiply in the Montgomery domain (three
    // multiplies per step instead of powmod's 128-bit divisions).
    std::uint64_t pow_m = one_m;
    std::uint64_t base_m = tm;
    for (std::size_t e = count; e > 0; e >>= 1) {
      if ((e & 1) != 0) pow_m = mont.mul(pow_m, base_m);
      base_m = mont.mul(base_m, base_m);
    }
    tpow_ = util::mulmod(tpow_, mont.from_mont(pow_m), p_);
    fed_ += count;
  }

  std::uint64_t modulus() const noexcept { return p_; }
  std::uint64_t point() const noexcept { return t_; }

  /// Snapshot: (p, t) plus the three streaming registers. The Montgomery
  /// context is derived, so restored_from() rebuilds it through the
  /// constructor and then overwrites the registers verbatim — a restored
  /// fingerprint continues bit-identically.
  void snapshot_to(util::serde::ByteWriter& w) const {
    w.u64(p_);
    w.u64(t_);
    w.u64(tpow_);
    w.u64(acc_);
    w.u64(fed_);
  }
  static PolyFingerprint restored_from(util::serde::ByteReader& r) {
    const std::uint64_t p = r.u64();
    const std::uint64_t t = r.u64();
    if (p == 0) throw util::serde::DecodeError("PolyFingerprint: modulus 0");
    PolyFingerprint f(p, t);
    f.tpow_ = r.u64();
    f.acc_ = r.u64();
    f.fed_ = r.u64();
    return f;
  }

 private:
  std::uint64_t p_;
  std::uint64_t t_;
  std::uint64_t tpow_;
  std::uint64_t acc_ = 0;
  std::uint64_t fed_ = 0;
  std::optional<util::Montgomery> mont_;  // engaged iff p_ odd, 2 < p_ < 2^63
  // Batch constants in the Montgomery domain (valid while mont_ engaged).
  std::uint64_t tm_ = 0;     // t
  std::uint64_t t8m_ = 0;    // t^8 (the lane stride)
  std::uint64_t one_m_ = 0;  // 1 (the branchless lane increment)
};

/// One-shot fingerprint of a whole bit string (testing convenience).
template <typename BitRange>
std::uint64_t fingerprint_of(const BitRange& bits, std::uint64_t p,
                             std::uint64_t t) noexcept {
  PolyFingerprint f(p, t);
  for (bool b : bits) f.feed(b);
  return f.value();
}

}  // namespace qols::fingerprint
