#pragma once
// Classical online recognizers for L_DISJ.
//
// ClassicalBlockRecognizer is Proposition 3.7's machine: it is the optimal
// classical strategy, using Theta(2^k) = Theta(n^{1/3}) bits. The others
// bracket it: ClassicalFullRecognizer stores a whole m-bit string
// (Theta(n^{2/3})), and the sampling/Bloom recognizers live below the
// Omega(n^{1/3}) lower bound of Theorem 3.6 — the lower bound predicts they
// must fail, and experiment E10 measures exactly how.

#include <cstdint>
#include <memory>
#include <vector>

#include "qols/fingerprint/equality_checker.hpp"
#include "qols/lang/structure_validator.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/util/bitvec.hpp"
#include "qols/util/rng.hpp"

namespace qols::core {

/// Proposition 3.7: in repetition i the machine buffers block [x]_i (the
/// 2^k bits of x at offsets [i*2^k, (i+1)*2^k)) while streaming the x-block,
/// then matches them against the same offsets of the y-block. Repetition i
/// certifies block i; after all 2^k repetitions every index was checked.
/// Structure/consistency are validated by the same A1/A2 as the quantum
/// machine ("the same classical techniques", per the proof).
///
/// Error: one-sided, <= 2^{-2k} (only A2 can err). Space: Theta(2^k) bits.
class ClassicalBlockRecognizer final : public machine::OnlineRecognizer {
 public:
  explicit ClassicalBlockRecognizer(std::uint64_t seed);

  void feed(stream::Symbol s) override;
  /// Vectorized hot path: A1/A2 consume the chunk in bulk, and runs of data
  /// bits touch only their overlap with the repetition's 2^k-bit window —
  /// decisions stay bit-identical to per-symbol feeding.
  void feed_chunk(std::span<const stream::Symbol> chunk) override;
  bool finish() override;
  void reset(std::uint64_t seed) override;
  machine::SpaceReport space_used() const override;
  std::string name() const override { return "classical-block"; }
  std::vector<std::uint8_t> snapshot() const override;
  void restore(std::span<const std::uint8_t> bytes) override;

  bool intersection_found() const noexcept { return found_; }

 private:
  void on_own_symbol(stream::Symbol s);
  void on_body_symbol(stream::Symbol s);
  void on_body_run(const stream::Symbol* data, std::uint64_t len);

  lang::StructureValidator a1_;
  std::unique_ptr<fingerprint::EqualityChecker> a2_;

  bool in_prefix_ = true;
  unsigned k_ = 0;
  bool active_ = false;
  std::uint64_t m_ = 0;
  std::uint64_t block_len_ = 0;  // 2^k
  std::uint64_t rep_ = 0;
  unsigned block_ = 0;
  std::uint64_t off_ = 0;
  util::BitVec buffer_;  // the 2^k buffered bits of block [x]_rep
  bool found_ = false;
};

/// Baseline that stores all of x(1) (m = 2^{2k} bits = Theta(n^{2/3})) and
/// checks y(1) against it directly; A1/A2 still validate the rest.
class ClassicalFullRecognizer final : public machine::OnlineRecognizer {
 public:
  explicit ClassicalFullRecognizer(std::uint64_t seed);

  void feed(stream::Symbol s) override;
  /// Vectorized: only repetition 0 reads or writes x, so later repetitions
  /// reduce to counter arithmetic per run.
  void feed_chunk(std::span<const stream::Symbol> chunk) override;
  bool finish() override;
  void reset(std::uint64_t seed) override;
  machine::SpaceReport space_used() const override;
  std::string name() const override { return "classical-full"; }
  std::vector<std::uint8_t> snapshot() const override;
  void restore(std::span<const std::uint8_t> bytes) override;

 private:
  void on_own_symbol(stream::Symbol s);
  void on_body_run(const stream::Symbol* data, std::uint64_t len);
  lang::StructureValidator a1_;
  std::unique_ptr<fingerprint::EqualityChecker> a2_;

  bool in_prefix_ = true;
  unsigned k_ = 0;
  bool active_ = false;
  std::uint64_t m_ = 0;
  std::uint64_t rep_ = 0;
  unsigned block_ = 0;
  std::uint64_t off_ = 0;
  util::BitVec x_;
  bool found_ = false;
};

/// Small-space strategy #1: per repetition, sample `budget` uniformly random
/// indices, remember x's bits there, and compare against y's bits at the
/// same indices. Space O(budget * log m). Misses an intersection of size t
/// with probability about (1 - t/m)^{budget * 2^k} — for budget = O(log m)
/// this tends to 1, as Theorem 3.6 demands of any o(sqrt m)-space machine.
class ClassicalSamplingRecognizer final : public machine::OnlineRecognizer {
 public:
  ClassicalSamplingRecognizer(std::uint64_t seed, std::uint64_t budget);

  void feed(stream::Symbol s) override;
  /// Vectorized: a run of data bits visits only the sampled indices that
  /// fall inside it (the sorted sample makes that a cursor sweep).
  void feed_chunk(std::span<const stream::Symbol> chunk) override;
  bool finish() override;
  void reset(std::uint64_t seed) override;
  machine::SpaceReport space_used() const override;
  std::string name() const override { return "classical-sample"; }
  std::vector<std::uint8_t> snapshot() const override;
  void restore(std::span<const std::uint8_t> bytes) override;

 private:
  void draw_indices();
  void on_own_symbol(stream::Symbol s);
  void on_body_run(const stream::Symbol* data, std::uint64_t len);

  util::Rng rng_;
  std::uint64_t budget_;
  lang::StructureValidator a1_;
  std::unique_ptr<fingerprint::EqualityChecker> a2_;

  bool in_prefix_ = true;
  unsigned k_ = 0;
  bool active_ = false;
  std::uint64_t m_ = 0;
  std::uint64_t rep_ = 0;
  unsigned block_ = 0;
  std::uint64_t off_ = 0;
  std::vector<std::uint64_t> indices_;  // sorted sample for this repetition
  std::vector<bool> xbits_;             // x's bits at those indices
  std::size_t cursor_ = 0;              // sweep position into indices_
  bool found_ = false;
};

/// Small-space strategy #2: a Bloom filter over the 1-positions of x(1);
/// every 1-position of y(1) is tested against it. No false negatives, so
/// intersecting inputs are ALWAYS rejected; but at o(sqrt m) bits the false
/// positive rate approaches 1 and disjoint inputs get rejected too — the
/// machine trades soundness for completeness and still fails the
/// bounded-error requirement, again as the lower bound predicts.
class ClassicalBloomRecognizer final : public machine::OnlineRecognizer {
 public:
  /// Throws std::invalid_argument when filter_bits == 0 (the hash range
  /// would be empty). num_hashes == 0 is legal but degenerate: the
  /// all-hashes-present probe is vacuously true, so every index reads as
  /// "maybe present" and any y with a 1-bit causes rejection.
  ClassicalBloomRecognizer(std::uint64_t seed, std::uint64_t filter_bits,
                           unsigned num_hashes);

  void feed(stream::Symbol s) override;
  /// Vectorized: the filter is built/probed in repetition 0 only; every
  /// later repetition reduces to counter arithmetic per run, and within
  /// repetition 0 only one-bits hash.
  void feed_chunk(std::span<const stream::Symbol> chunk) override;
  bool finish() override;
  void reset(std::uint64_t seed) override;
  machine::SpaceReport space_used() const override;
  std::string name() const override { return "classical-bloom"; }
  std::vector<std::uint8_t> snapshot() const override;
  void restore(std::span<const std::uint8_t> bytes) override;

 private:
  std::uint64_t hash(std::uint64_t index, unsigned which) const noexcept;
  void on_own_symbol(stream::Symbol s);
  void on_body_run(const stream::Symbol* data, std::uint64_t len);

  std::uint64_t seed_ = 0;
  std::uint64_t filter_bits_;
  unsigned num_hashes_;
  lang::StructureValidator a1_;
  std::unique_ptr<fingerprint::EqualityChecker> a2_;

  bool in_prefix_ = true;
  unsigned k_ = 0;
  bool active_ = false;
  std::uint64_t m_ = 0;
  std::uint64_t rep_ = 0;
  unsigned block_ = 0;
  std::uint64_t off_ = 0;
  util::BitVec filter_;
  bool hit_ = false;
};

}  // namespace qols::core
