#pragma once
// Corollary 3.5: amplification from one-sided error 1/4 to any constant.
//
// The quantum machine accepts members with probability 1 and non-members
// with probability at most 3/4. Running r independent copies in parallel on
// the same stream (space scales by r — still O(log n) for constant r) and
// accepting only if EVERY copy accepts keeps perfect completeness and drives
// the false-accept probability to (3/4)^r:  r = 4 already achieves the 2/3
// bounded-error threshold for both L_DISJ and its complement, placing
// L_DISJ in OQBPL.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "qols/machine/online_recognizer.hpp"

namespace qols::core {

/// Runs `copies` independent instances of a recognizer in lockstep on the
/// same stream; accepts iff all copies accept (preserves perfect
/// completeness; exponentiates one-sided error on the reject side).
class AmplifiedRecognizer final : public machine::OnlineRecognizer {
 public:
  using Factory =
      std::function<std::unique_ptr<machine::OnlineRecognizer>(std::uint64_t seed)>;

  AmplifiedRecognizer(Factory factory, std::uint64_t copies,
                      std::uint64_t seed);

  void feed(stream::Symbol s) override;
  /// Forwards the whole chunk to every copy (copies are independent, so
  /// chunk-at-a-time lockstep equals symbol-at-a-time lockstep).
  void feed_chunk(std::span<const stream::Symbol> chunk) override;
  bool finish() override;
  void reset(std::uint64_t seed) override;
  machine::SpaceReport space_used() const override;
  std::string name() const override;
  /// Honest only if every copy's decision procedure actually ran.
  bool fully_simulated() const override;

  std::uint64_t copies() const noexcept { return inner_.size(); }

 private:
  Factory factory_;
  std::uint64_t requested_copies_;
  std::vector<std::unique_ptr<machine::OnlineRecognizer>> inner_;
};

}  // namespace qols::core
