#pragma once
// The paper's main construction (Theorem 3.4 / Corollary 3.5): a quantum
// online machine deciding L_DISJ with O(log n) classical bits + O(log n)
// qubits.
//
// Composition rule (Section 3.2): run A1, A2, A3 in parallel on the stream;
//   - A1 = 0 (shape broken)          -> reject
//   - A1 = 1, A2 = 0 (inconsistent)  -> reject
//   - A1 = A2 = 1                    -> accept iff A3 outputs 1.
//
// Guarantees, phrased for membership in L_DISJ:
//   - w in L_DISJ     => accepted with probability 1   (perfect completeness)
//   - w not in L_DISJ => rejected with probability >= 1/4 (one-sided error)
//
// Flipping accept/reject turns this machine into the OQRSPACE(log n)
// recognizer of the *complement* language, which is how Theorem 3.4 states
// it (Definition 2.3's one-sided classes put the error on the accept side).
// Corollary 3.5 (bounded error 2/3 for both L_DISJ and its complement)
// follows by running independent copies — see AmplifiedRecognizer.

#include <cstdint>
#include <memory>
#include <optional>

#include "qols/core/grover_streamer.hpp"
#include "qols/fingerprint/equality_checker.hpp"
#include "qols/lang/structure_validator.hpp"
#include "qols/machine/online_recognizer.hpp"

namespace qols::core {

class QuantumOnlineRecognizer final : public machine::OnlineRecognizer {
 public:
  struct Options {
    /// Forwarded to the A3 streamer (backend selection, gate-level
    /// lowering etc.).
    GroverStreamer::Options a3;
  };

  /// Three-valued decision: kNotSimulated flags that A1/A2 passed but A3's
  /// register exceeded every simulation backend's ceiling, so no honest
  /// accept/reject exists for this run.
  enum class Verdict { kAccept, kReject, kNotSimulated };

  explicit QuantumOnlineRecognizer(std::uint64_t seed);
  QuantumOnlineRecognizer(std::uint64_t seed, Options opts);

  void feed(stream::Symbol s) override;
  /// Chunked ingestion: A1/A2/A3 each consume the run in bulk (they are
  /// independent machines running in parallel on the same tape, so feeding
  /// order across them is immaterial). Bit-identical to per-symbol feeding.
  void feed_chunk(std::span<const stream::Symbol> chunk) override;
  bool finish() override;
  void reset(std::uint64_t seed) override;
  machine::SpaceReport space_used() const override;
  std::string name() const override { return "quantum"; }
  bool fully_simulated() const override { return !a3_->not_simulated(); }
  /// Serializes A1, A2 and A3 including the quantum register (via the
  /// backend's serialize_state). Gate-level mode refuses
  /// (machine::UnsupportedSnapshot): the external sink's tape cannot travel.
  std::vector<std::uint8_t> snapshot() const override;
  void restore(std::span<const std::uint8_t> bytes) override;

  /// The explicit three-valued decision; finish() maps kNotSimulated to
  /// reject (never claim membership on a word the machine could not run).
  Verdict verdict();

  /// Exact acceptance probability of THIS run (fixed coin flips j and t,
  /// exact measurement statistics): 0 if A1/A2 already rejected or if the
  /// register could not be simulated (consistent with verdict()), else
  /// P[l measures 0]. Usable instead of finish() for low-variance
  /// experiment estimates. Does not collapse the state.
  double exact_acceptance_probability();

  /// The verdict for the complement language (Theorem 3.4's machine).
  bool finish_complement() { return !finish(); }

  const GroverStreamer& a3() const noexcept { return *a3_; }
  const lang::StructureValidator& a1() const noexcept { return a1_; }
  const fingerprint::EqualityChecker& a2() const noexcept { return *a2_; }

 private:
  Options opts_;
  lang::StructureValidator a1_;
  std::unique_ptr<fingerprint::EqualityChecker> a2_;
  std::unique_ptr<GroverStreamer> a3_;
  bool finished_ = false;
};

}  // namespace qols::core
