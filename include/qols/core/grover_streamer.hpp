#pragma once
// Procedure A3 (proof of Theorem 3.4): the quantum heart of the online
// machine. Streams the Buhrman-Cleve-Wigderson protocol over the repeated
// input:
//
//   1. |phi> <- H^{x2k} |0>  (uniform superposition on the 2k index qubits)
//   2. pick j uniform in {0, ..., 2^k - 1}
//   3. for repetitions i = 1..j:  |phi> <- U_k S_k U_k V_z(i) W_y(i) V_x(i)
//      (one Grover iteration per repetition; V/W gates are emitted bit by
//      bit as the input streams past)
//   4. on repetition j+1:  |phi> <- R_y(j+1) V_x(j+1)
//   5. measure the last qubit; output 1 - outcome.
//
// Register layout: qubits [0, 2k) = index register, qubit 2k = h (the oracle
// workspace), qubit 2k+1 = l (the AND result R_y writes). Because each
// streamed bit fixes the *entire* index register, its gate touches O(1)
// amplitudes — the per-symbol cost of the simulation is constant.
//
// Simulation runs through a pluggable backend::QuantumBackend chosen per
// instance (see qols/backend/registry.hpp): the dense StateVector while
// k <= max_sim_k, the symmetry-aware structured backend past the dense wall
// up to max_structured_k, and — beyond every ceiling — an explicit
// *not simulated* status (finish_output() == kNotSimulated) instead of a
// silently absent decision.
//
// Gate-level mode: the same per-bit schedule is additionally lowered to the
// paper's {H, T, CNOT} alphabet through a CircuitBuilder writing to any
// GateSink (count, tape, or immediate application), with 2k compiler
// ancillas above the data register. This realizes Definition 2.3's output
// tape literally.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "qols/backend/quantum_backend.hpp"
#include "qols/gates/builder.hpp"
#include "qols/stream/symbol_stream.hpp"
#include "qols/util/rng.hpp"

namespace qols::core {

class GroverStreamer {
 public:
  struct Options {
    /// Simulate the register (needed for decisions/probabilities).
    bool simulate = true;
    /// If set, also lower every operation to {H,T,CNOT} into this sink.
    gates::GateSink* gate_sink = nullptr;
    /// Backend id ("dense", "structured"), or empty/"auto" to pick per k —
    /// the QOLS_BACKEND environment override applies only when empty.
    /// Unknown ids throw std::invalid_argument at construction.
    std::string backend{};
    /// Largest k the dense simulator will instantiate (2k+2 qubits).
    unsigned max_sim_k = 10;
    /// Largest k the structured backend is auto-selected for; past this the
    /// run is reported as not simulated.
    unsigned max_structured_k = 16;
    /// Amplitude precision request, forwarded to the backend factory.
    /// kSingle selects the dense float fast mode; the structured backend is
    /// double-only and ignores it. Decisions, accept counts, and space
    /// reports are precision-invariant (the contract tested by
    /// tests/test_precision_differential.cpp); only amplitudes differ,
    /// within the documented per-gate-count tolerance.
    quantum::Precision precision = quantum::Precision::kDouble;
  };

  /// finish_output() value when the register could not be simulated (k
  /// beyond every backend ceiling): the caller must surface the missing
  /// decision instead of treating the word as decided.
  static constexpr int kNotSimulated = -1;

  explicit GroverStreamer(util::Rng rng);
  GroverStreamer(util::Rng rng, Options opts);

  /// Consumes one symbol of the word (same stream as A1/A2).
  void feed(stream::Symbol s);

  /// Consumes a run of symbols; identical register evolution and RNG
  /// consumption to per-symbol feeding. Zero bits only advance the offset
  /// counter and the post-measurement tail is ignored wholesale, so both
  /// are skipped in bulk; one-bits still emit their gate individually.
  void feed_chunk(std::span<const stream::Symbol> chunk);

  /// A3's output: 1 if the measured ancilla was 0 ("looks disjoint"),
  /// 0 otherwise, kNotSimulated if the register exceeded every backend
  /// ceiling. Performs the projective measurement using this streamer's
  /// RNG. Call once, after the stream ends.
  int finish_output();

  /// Exact P[measuring l yields 1] for this run's j — i.e. this run's
  /// rejection probability on consistent intersecting inputs, equal to
  /// sin^2((2j+1) theta). Available before finish_output().
  double probability_output_zero() const;

  /// True iff a simulating run was requested but no backend could cover k.
  bool not_simulated() const noexcept { return overflow_; }

  /// The Grover iteration count drawn in step 2 (after the prefix is read).
  std::optional<std::uint64_t> chosen_j() const noexcept {
    return active_ ? std::optional<std::uint64_t>(j_) : std::nullopt;
  }

  /// Qubits of the data register (2k+2), excluding compiler ancillas.
  std::uint64_t qubits_used() const noexcept {
    return active_ ? 2ULL * k_ + 2 : 0;
  }
  /// Compiler ancillas on top (gate-level mode only).
  std::uint64_t ancilla_qubits_used() const noexcept;

  /// Classical work bits: the prefix counter, j, repetition and offset
  /// counters — O(k) total.
  std::uint64_t classical_bits_used() const noexcept;

  /// The same accounting as classical_bits_used() for a hypothetical run at
  /// depth k — the single source of truth for A3's classical footprint
  /// (experiment E19 reports it for runs it drives at backend level).
  static std::uint64_t classical_bits_for(unsigned k) noexcept;

  /// Total {H,T,CNOT} gates emitted (gate-level mode only).
  std::uint64_t gates_emitted() const noexcept;

  /// Backend operations applied to the register this run (H-range prep,
  /// per-bit V/W gates, diffusions). Plain tally for telemetry attribution;
  /// NOT part of the snapshot wire format — a revived session restarts it.
  std::uint64_t gates_applied() const noexcept { return gates_applied_; }

  /// Serializes the full streamer state — control fields, RNG, and the
  /// backend register via QuantumBackend::serialize_state. Refuses (throws
  /// backend::UnsupportedOperation) in gate-level mode: the external
  /// GateSink's position cannot be captured here.
  void snapshot_to(util::serde::ByteWriter& w) const;
  /// Inverse of snapshot_to on a freshly constructed streamer; rebuilds the
  /// backend from its recorded id/precision and restores its register
  /// bit-identically. Refuses when this streamer has a gate sink configured.
  void restore_from(util::serde::ByteReader& r);

  /// The simulating backend, or nullptr (not simulating / not yet active).
  const backend::QuantumBackend* simulation_backend() const noexcept {
    return backend_.get();
  }

  /// Read-only view of the dense register when the dense backend is active
  /// (tests, gate-level replay comparisons); nullptr otherwise.
  const quantum::StateVector* state() const noexcept {
    return backend_ ? backend_->dense_state() : nullptr;
  }

 private:
  void on_bit(bool bit);
  void on_sep();
  void apply_diffusion();

  util::Rng rng_;
  Options opts_;

  bool in_prefix_ = true;
  unsigned k_ = 0;
  bool active_ = false;   // simulating (shape plausible, k within range)
  bool overflow_ = false; // k exceeded every ceiling: cannot simulate honestly

  std::uint64_t m_ = 0;     // 2^{2k}
  std::uint64_t j_ = 0;     // Grover iterations to run
  std::uint64_t rep_ = 0;   // 0-based repetition index
  unsigned block_ = 0;      // 0 = x, 1 = y, 2 = z
  std::uint64_t off_ = 0;   // offset within the current block
  bool done_ = false;       // step 4 finished; ignore the rest
  std::uint64_t gates_applied_ = 0;  // telemetry only; never serialized

  std::unique_ptr<backend::QuantumBackend> backend_;
  std::unique_ptr<gates::CircuitBuilder> builder_;
};

}  // namespace qols::core
