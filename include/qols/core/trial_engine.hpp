#pragma once
// The Monte-Carlo trial engine behind every empirical claim in the repo:
// shards the independent trials of an experiment across the process-wide
// util::ThreadPool while staying bit-identical to a serial run.
//
// Determinism contract: trial i is a pure function of (seed_base + i) and
// the stream contents — the recognizer is constructed fresh from its seed,
// the stream factory yields a fresh stream, and the accept count is an
// order-independent sum — so sharding cannot change any reported number.
// The space report is taken from trial 0 exactly (space is seed-stable),
// never from "whichever trial finished last".
//
//   TrialEngine engine;                       // global pool
//   auto r = engine.measure_acceptance(make_stream, make_recognizer,
//                                      {.trials = 500, .seed_base = 1});
//
// The free functions in qols/core/experiment.hpp are thin wrappers over a
// default-configured engine; construct an engine directly to pin a pool,
// force serial execution, or tune the sharding grain.

#include <cstddef>
#include <functional>

#include "qols/core/experiment.hpp"
#include "qols/util/thread_pool.hpp"

namespace qols::core {

class TrialEngine {
 public:
  struct Config {
    /// Pool to shard onto; nullptr means util::ThreadPool::global().
    util::ThreadPool* pool = nullptr;
    /// Run everything inline on the calling thread (the serial reference
    /// path; parallel results must match it exactly).
    bool serial = false;
    /// Minimum trials per task — below this the whole range runs inline.
    std::size_t grain = 1;
  };

  /// The outcome of one independent trial for run_trials: the decision,
  /// whether the machine's decision procedure actually ran (see
  /// OnlineRecognizer::fully_simulated), and its conceptual space.
  struct TrialOutcome {
    bool accepted = false;
    bool simulated = true;
    machine::SpaceReport space;
  };
  /// A pure function of the trial seed — run_trials invokes it concurrently
  /// unless configured serial.
  using TrialFn = std::function<TrialOutcome(std::uint64_t seed)>;

  TrialEngine() = default;
  explicit TrialEngine(Config config) : config_(config) {}

  /// The generic engine core: runs opts.trials independent trials of
  /// `trial` (seeded seed_base + i), aggregating accepts and not-simulated
  /// counts as order-independent sums and taking the space report from
  /// trial 0 exactly. Stream/recognizer pairs ride through
  /// measure_acceptance below; backend-level drivers (e.g. experiment E19's
  /// structured Grover evolution) call this directly.
  ExperimentResult run_trials(const TrialFn& trial,
                              const ExperimentOptions& opts) const;

  /// Runs opts.trials independent trials (recognizer seeded seed_base + i,
  /// fed a fresh stream) and aggregates accepts. Factories are invoked
  /// concurrently unless configured serial: they must be safe to call from
  /// multiple threads (the stock LDisjInstance::stream() and the recognizer
  /// constructors are — they share only immutable state).
  ExperimentResult measure_acceptance(const StreamFactory& make_stream,
                                      const RecognizerFactory& make_recognizer,
                                      const ExperimentOptions& opts) const;

  /// Member and non-member legs with disjoint seed ranges:
  /// [seed_base, seed_base + trials) and [seed_base + trials,
  /// seed_base + 2 * trials).
  QualityProfile measure_quality(const StreamFactory& member_stream,
                                 const StreamFactory& nonmember_stream,
                                 const RecognizerFactory& make_recognizer,
                                 const ExperimentOptions& opts) const;

  const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

}  // namespace qols::core
