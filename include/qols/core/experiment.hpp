#pragma once
// Reusable experiment driver: the measure-acceptance-with-confidence loop
// that every harness needs, packaged for downstream users reproducing or
// extending the paper's experiments.
//
//   auto r = measure_acceptance(
//       [&] { return inst.stream(); },
//       [](std::uint64_t seed) { return std::make_unique<QuantumOnlineRecognizer>(seed); },
//       {.trials = 500, .seed_base = 1});
//   r.rate(), r.wilson(), r.space   // acceptance, 95% CI, space report

#include <cstdint>
#include <functional>
#include <memory>

#include "qols/machine/online_recognizer.hpp"
#include "qols/stream/symbol_stream.hpp"
#include "qols/util/stats.hpp"

namespace qols::core {

struct ExperimentOptions {
  std::uint64_t trials = 100;
  std::uint64_t seed_base = 1;
  /// Normal quantile for the confidence interval (1.96 ~ 95%).
  double z = 1.96;
};

struct ExperimentResult {
  std::uint64_t trials = 0;
  std::uint64_t accepts = 0;
  /// Trials whose machine reported fully_simulated() == false (decision
  /// placeholder, not an honest run) — surfaced by the reporters instead of
  /// silently counting as rejects.
  std::uint64_t not_simulated = 0;
  machine::SpaceReport space;  ///< from trial 0 (space is seed-stable)

  double rate() const noexcept {
    return trials == 0 ? 0.0
                       : static_cast<double>(accepts) /
                             static_cast<double>(trials);
  }
  util::Interval wilson(double z = 1.96) const noexcept {
    return trials == 0 ? util::Interval{}
                       : util::wilson_interval(accepts, trials, z);
  }
};

using StreamFactory = std::function<std::unique_ptr<stream::SymbolStream>()>;
using RecognizerFactory =
    std::function<std::unique_ptr<machine::OnlineRecognizer>(std::uint64_t)>;

/// Runs `opts.trials` independent trials: recognizer seeded with
/// seed_base + i, fed a fresh stream, decision recorded. Trials are sharded
/// across the global thread pool (see qols/core/trial_engine.hpp); results
/// are bit-identical to a serial run of the same seeds.
ExperimentResult measure_acceptance(const StreamFactory& make_stream,
                                    const RecognizerFactory& make_recognizer,
                                    const ExperimentOptions& opts);

/// Convenience: acceptance on a member stream and rejection on a non-member
/// stream, same recognizer family — the two columns every comparison table
/// shows.
struct QualityProfile {
  ExperimentResult on_member;
  ExperimentResult on_nonmember;

  /// Worst-case error against ground truth (member must accept, non-member
  /// must reject).
  double max_error() const noexcept {
    const double e1 = 1.0 - on_member.rate();
    const double e2 = on_nonmember.rate();
    return e1 > e2 ? e1 : e2;
  }
  bool bounded_error() const noexcept { return max_error() < 1.0 / 3.0; }
};

QualityProfile measure_quality(const StreamFactory& member_stream,
                               const StreamFactory& nonmember_stream,
                               const RecognizerFactory& make_recognizer,
                               const ExperimentOptions& opts);

}  // namespace qols::core
