#pragma once
// Gate-level IR in the paper's vocabulary.
//
// Definition 2.3 fixes the universal set G = {G0, G1, G2} with G0 = H,
// G1 = T (pi/8 gate) and G2 = CNOT, and specifies the machine's output tape
// format  a1#b1#c1#...#ar#br#cr  where (a, b) are qubit labels and
// c in {0,1,2} selects the gate. The convention a == b denotes the identity.
// This file implements exactly that IR: the Gate record, the Circuit
// container, application to a StateVector, and (de)serialization of the
// output-tape encoding.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "qols/quantum/state_vector.hpp"

namespace qols::quantum {

/// The paper's gate alphabet.
enum class GateKind : std::uint8_t {
  kH = 0,     ///< G0: Hadamard on qubit a.
  kT = 1,     ///< G1: T = diag(1, e^{i pi/4}) on qubit a.
  kCnot = 2,  ///< G2: CNOT with control a, target b.
};

/// One tape entry G_c^{[a,b]}. For one-qubit gates b is carried along (the
/// tape always records both labels); a == b means the identity gate.
struct Gate {
  GateKind kind;
  std::uint32_t a;
  std::uint32_t b;

  bool is_identity() const noexcept { return a == b; }
  bool operator==(const Gate&) const noexcept = default;
};

/// Sequence of gates, i.e. the content of the machine's output tape.
class Circuit {
 public:
  Circuit() = default;

  void add(Gate g) { gates_.push_back(g); }
  void add_h(std::uint32_t q) { gates_.push_back({GateKind::kH, q, q == 0 ? 1u : 0u}); }
  void add_t(std::uint32_t q) { gates_.push_back({GateKind::kT, q, q == 0 ? 1u : 0u}); }
  void add_cnot(std::uint32_t c, std::uint32_t t) {
    gates_.push_back({GateKind::kCnot, c, t});
  }

  std::size_t size() const noexcept { return gates_.size(); }
  bool empty() const noexcept { return gates_.empty(); }
  const std::vector<Gate>& gates() const noexcept { return gates_; }
  const Gate& operator[](std::size_t i) const noexcept { return gates_[i]; }

  void clear() { gates_.clear(); }
  void append(const Circuit& other);

  /// Applies every gate in order to `state` (identity-convention respected).
  void apply_to(StateVector& state) const;

  /// Number of non-identity gates of each kind, for gate-count accounting.
  struct Counts {
    std::size_t h = 0;
    std::size_t t = 0;
    std::size_t cnot = 0;
    std::size_t identity = 0;
    std::size_t total() const noexcept { return h + t + cnot + identity; }
  };
  Counts counts() const noexcept;

  /// Largest qubit label mentioned plus one (0 for the empty circuit).
  unsigned qubits_spanned() const noexcept;

  /// Serializes to the paper's output-tape string a1#b1#c1#a2#b2#c2#...
  /// (fields separated by '#'; no trailing separator).
  std::string to_tape() const;

  /// Parses an output-tape string. Returns nullopt on malformed input
  /// (non-numeric fields, c outside {0,1,2}, wrong arity).
  static std::optional<Circuit> from_tape(std::string_view tape);

  bool operator==(const Circuit&) const noexcept = default;

 private:
  std::vector<Gate> gates_;
};

/// Applies a single tape entry to a state.
void apply_gate(StateVector& state, const Gate& g);

}  // namespace qols::quantum
