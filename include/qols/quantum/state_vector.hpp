#pragma once
// Dense state-vector simulator.
//
// The paper's online machine touches only O(log n) qubits (2k+2 data qubits
// plus O(k) compiler ancillas), so exact dense simulation is the faithful
// substitute for physical hardware: every amplitude evolves exactly per the
// unitary postulate and measurement statistics are computed from |amp|^2.
//
// Performance notes (hpc): amplitudes are stored structure-of-arrays — one
// contiguous `re[]` and one contiguous `im[]` buffer — so gate kernels are
// straight-line loops over disjoint scalar arrays with no interleaved
// real/imag access pattern. The hot kernels (H, X, Z, phase, reflect-zero,
// MCZ, probability/measure) run as blocked contiguous-run loops with an
// explicit AVX2 path selected by runtime dispatch (see SimdMode below); the
// scalar fallback is always compiled and is the auto-vectorizable reference
// form. Kernels are data-parallel over the project ThreadPool with a grain
// chosen so registers below ~2^14 amplitudes run serially. The streaming
// oracles of procedure A3 (V_x, W_y, R_y driven by single input bits) fix
// the whole index register, so they touch O(1) amplitudes; dedicated fast
// paths are provided for them.
//
// Precision: the simulator is a class template on the amplitude scalar.
// `StateVector` (double) is the reference; `StateVectorF` (float) is the
// opt-in fast mode — half the memory traffic, twice the SIMD lanes. The
// probability/measurement pipeline accumulates in double in BOTH modes, so
// measurement *decisions* remain seed-for-seed comparable even when float
// amplitudes carry rounding (the precision/tolerance contract is spelled out
// in docs/ARCHITECTURE.md and enforced by tests/test_precision_differential).

#include <cassert>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string_view>
#include <type_traits>
#include <vector>

#include "qols/util/rng.hpp"

namespace qols::quantum {

using Amplitude = std::complex<double>;

/// Amplitude scalar width of the dense simulator. Threaded from user-facing
/// knobs (RecognizerSpec::float_amplitudes, qols_bench --precision) down to
/// the backend factory; the structured backend is double-only and documents
/// that it ignores the request.
enum class Precision {
  kDouble = 0,  ///< reference semantics; every differential baseline
  kSingle = 1,  ///< opt-in fast mode: float amplitudes, double accumulation
};

/// "double" / "float".
std::string_view precision_name(Precision p) noexcept;

/// Kernel instruction-set dispatch. kAuto (the default) resolves to kAvx2
/// when the CPU supports it and the QOLS_NO_AVX2 environment override is not
/// set, else to kScalar. set_simd_mode(kScalar / kAvx2) forces a path at
/// runtime (benchmark rows, dispatch-agreement tests).
enum class SimdMode {
  kAuto = 0,
  kScalar = 1,
  kAvx2 = 2,
};

/// True when this CPU can execute the AVX2 kernels.
bool cpu_supports_avx2() noexcept;

/// Forces the kernel path. Throws std::invalid_argument for kAvx2 on a CPU
/// without AVX2. Process-global; intended for benchmarks and tests, not for
/// concurrent mutation while kernels run.
void set_simd_mode(SimdMode mode);

/// The last value passed to set_simd_mode (kAuto initially).
SimdMode requested_simd_mode() noexcept;

/// The path kernels will actually take right now: kScalar or kAvx2, never
/// kAuto.
SimdMode active_simd_mode() noexcept;

/// QOLS_NO_AVX2 parsing rule, exposed for tests: disabled when the value is
/// non-null, non-empty and not "0". The environment is read once per
/// process (CI's scalar-fallback leg sets it before launch); use
/// set_simd_mode for in-process switching.
bool simd_env_disabled(const char* value) noexcept;

/// A control condition: `qubit` must be in basis state `value`.
struct ControlTerm {
  unsigned qubit;
  bool value;
};

/// Exact n-qubit pure state, little-endian (qubit q is bit q of the basis
/// index). Starts in |0...0>. `Scalar` is the amplitude component type;
/// see the Precision notes above.
template <typename Scalar>
class StateVectorT {
  static_assert(std::is_same_v<Scalar, double> || std::is_same_v<Scalar, float>,
                "StateVectorT supports double and float amplitudes");

 public:
  using scalar_type = Scalar;

  /// Constructs |0...0> on `num_qubits` qubits. Supports up to 30 qubits
  /// (16 GiB of double amplitudes); the library never needs more than ~24.
  explicit StateVectorT(unsigned num_qubits);

  unsigned num_qubits() const noexcept { return num_qubits_; }
  std::size_t dim() const noexcept { return re_.size(); }

  /// Read-only views of the structure-of-arrays storage.
  std::span<const Scalar> re() const noexcept { return re_; }
  std::span<const Scalar> im() const noexcept { return im_; }

  /// One amplitude, widened to the double-based Amplitude type.
  Amplitude amplitude(std::size_t basis) const noexcept {
    return Amplitude{static_cast<double>(re_[basis]),
                     static_cast<double>(im_[basis])};
  }

  /// Materialized array-of-structs copy of the state (widened to double).
  /// O(dim) allocation — a probe for tests and reference comparisons, not a
  /// kernel input; kernels read the SoA spans.
  std::vector<Amplitude> amplitudes() const {
    std::vector<Amplitude> out;
    out.reserve(dim());
    for (std::size_t i = 0; i < dim(); ++i) out.push_back(amplitude(i));
    return out;
  }

  /// Resets to |0...0>.
  void reset();

  /// Sets the state to |basis>.
  void set_basis_state(std::size_t basis);

  /// Overwrites the register with externally supplied SoA amplitudes
  /// (snapshot restore). Both vectors must match dim() exactly; the bytes
  /// are adopted verbatim, so a restored register is bit-identical to the
  /// serialized one. Throws std::invalid_argument on a size mismatch.
  void load(std::vector<Scalar> re, std::vector<Scalar> im) {
    if (re.size() != dim() || im.size() != dim()) {
      throw std::invalid_argument("StateVectorT::load: dimension mismatch");
    }
    re_ = std::move(re);
    im_ = std::move(im);
  }

  // --- one-qubit gates -----------------------------------------------------
  void apply_h(unsigned q);
  void apply_x(unsigned q);
  void apply_z(unsigned q);
  /// T = diag(1, e^{i pi/4}); the paper's G1.
  void apply_t(unsigned q);
  void apply_tdg(unsigned q);
  void apply_s(unsigned q);
  void apply_sdg(unsigned q);
  /// diag(1, phase).
  void apply_phase(unsigned q, Amplitude phase);
  /// Arbitrary 2x2 unitary [[u00,u01],[u10,u11]].
  void apply_single(unsigned q, Amplitude u00, Amplitude u01, Amplitude u10,
                    Amplitude u11);

  // --- two-qubit gates -----------------------------------------------------
  void apply_cnot(unsigned control, unsigned target);
  void apply_cz(unsigned a, unsigned b);
  void apply_swap(unsigned a, unsigned b);

  // --- multi-controlled gates (pattern controls) ---------------------------
  /// X on `target` conditioned on every ControlTerm holding.
  void apply_mcx(std::span<const ControlTerm> controls, unsigned target);
  /// Phase flip (-1) on basis states satisfying every ControlTerm.
  void apply_mcz(std::span<const ControlTerm> controls);

  // --- structured operators used by the paper's procedure A3 ---------------
  /// Hadamard on each qubit in [first, first+count): the paper's U_k when
  /// applied to the index register.
  void apply_h_range(unsigned first, unsigned count);

  /// The paper's S_k on the index register [first, first+count):
  ///   |i> -> -|i| for i != 0, |0> -> |0>   (i.e. 2|0><0| - I on that range).
  void apply_reflect_zero(unsigned first, unsigned count);

  /// Diagonal +-1 oracle given explicitly by its marked set: negates the
  /// amplitude of every listed basis state. Cost O(|marked|).
  void apply_phase_flip_set(std::span<const std::uint64_t> marked);

  /// Fast path for V_x driven by one input bit: X on `target` conditioned on
  /// the index register [first, first+count) being exactly |index>. Touches
  /// 2^(num_qubits - count - 1) amplitude pairs; with the full index register
  /// as control this is O(remaining qubits' subspace) = O(1) for A3.
  void apply_x_on_index(unsigned first, unsigned count, std::uint64_t index,
                        unsigned target);

  /// Fast path for W_y: phase flip conditioned on index register == |index>
  /// AND qubit `h` == 1.
  void apply_z_on_index(unsigned first, unsigned count, std::uint64_t index,
                        unsigned h);

  /// Fast path for R_y: X on `target` conditioned on index register ==
  /// |index> AND qubit `h` == 1.
  void apply_cx_on_index(unsigned first, unsigned count, std::uint64_t index,
                         unsigned h, unsigned target);

  // --- measurement / inspection --------------------------------------------
  /// P[measuring qubit q yields 1]. Accumulated in double in both precision
  /// modes (the decision-exactness half of the precision contract).
  double probability_one(unsigned q) const;

  /// Projective measurement of qubit q in the computational basis; collapses
  /// and renormalizes the state. Draws exactly one uniform01() from `rng`.
  /// Returns the outcome.
  bool measure(unsigned q, util::Rng& rng);

  /// Samples a full computational-basis measurement without collapsing.
  std::size_t sample_basis(util::Rng& rng) const;

  /// L2 norm of the state (should be 1 up to rounding; tested invariant).
  /// Accumulated in double in both precision modes.
  double norm() const;

  /// <this|other>; both states must have equal dimension. Mixed-precision
  /// operands are explicitly supported: every term is widened to double
  /// before multiply-accumulate, so <double|float> equals the inner product
  /// with the float state's exactly-promoted double copy — no silent
  /// float-precision contamination of the comparison itself.
  template <typename OtherScalar>
  Amplitude inner_product(const StateVectorT<OtherScalar>& other) const {
    assert(dim() == other.dim());
    const std::span<const OtherScalar> ore = other.re();
    const std::span<const OtherScalar> oim = other.im();
    double acc_r = 0.0;
    double acc_i = 0.0;
    for (std::size_t i = 0; i < dim(); ++i) {
      const double xr = static_cast<double>(re_[i]);
      const double xi = static_cast<double>(im_[i]);
      const double yr = static_cast<double>(ore[i]);
      const double yi = static_cast<double>(oim[i]);
      acc_r += xr * yr + xi * yi;  // conj(this) * other
      acc_i += xr * yi - xi * yr;
    }
    return Amplitude{acc_r, acc_i};
  }

  /// |<this|other>|^2 — global-phase-insensitive agreement measure. Same
  /// mixed-precision contract as inner_product.
  template <typename OtherScalar>
  double fidelity(const StateVectorT<OtherScalar>& other) const {
    return std::norm(inner_product(other));
  }

 private:
  /// Negates every basis state i with (i & mask) == want: shared core of
  /// MCZ and the reflect-zero fixup.
  void negate_matching(std::size_t mask, std::size_t want);

  unsigned num_qubits_;
  std::vector<Scalar> re_;
  std::vector<Scalar> im_;
};

/// The reference (double) simulator — the type the rest of the library names.
using StateVector = StateVectorT<double>;
/// The opt-in float fast mode.
using StateVectorF = StateVectorT<float>;

extern template class StateVectorT<double>;
extern template class StateVectorT<float>;

}  // namespace qols::quantum
