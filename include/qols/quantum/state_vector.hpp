#pragma once
// Dense state-vector simulator.
//
// The paper's online machine touches only O(log n) qubits (2k+2 data qubits
// plus O(k) compiler ancillas), so exact dense simulation is the faithful
// substitute for physical hardware: every amplitude evolves exactly per the
// unitary postulate and measurement statistics are computed from |amp|^2.
//
// Performance notes (hpc): amplitudes live in one contiguous aligned buffer;
// gate kernels are data-parallel loops dispatched over the project ThreadPool
// with a grain chosen so registers below ~2^14 amplitudes run serially
// (avoids task overhead for the small registers at small k). The streaming
// oracles of procedure A3 (V_x, W_y, R_y driven by single input bits) fix the
// whole index register, so they touch O(1) amplitudes; dedicated fast paths
// are provided for them.

#include <complex>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "qols/util/rng.hpp"

namespace qols::quantum {

using Amplitude = std::complex<double>;

/// A control condition: `qubit` must be in basis state `value`.
struct ControlTerm {
  unsigned qubit;
  bool value;
};

/// Exact n-qubit pure state, little-endian (qubit q is bit q of the basis
/// index). Starts in |0...0>.
class StateVector {
 public:
  /// Constructs |0...0> on `num_qubits` qubits. Supports up to 30 qubits
  /// (16 GiB of amplitudes); the library never needs more than ~24.
  explicit StateVector(unsigned num_qubits);

  unsigned num_qubits() const noexcept { return num_qubits_; }
  std::size_t dim() const noexcept { return amps_.size(); }

  /// Read-only view of the amplitudes.
  std::span<const Amplitude> amplitudes() const noexcept { return amps_; }

  Amplitude amplitude(std::size_t basis) const noexcept { return amps_[basis]; }

  /// Resets to |0...0>.
  void reset();

  /// Sets the state to |basis>.
  void set_basis_state(std::size_t basis);

  // --- one-qubit gates -----------------------------------------------------
  void apply_h(unsigned q);
  void apply_x(unsigned q);
  void apply_z(unsigned q);
  /// T = diag(1, e^{i pi/4}); the paper's G1.
  void apply_t(unsigned q);
  void apply_tdg(unsigned q);
  void apply_s(unsigned q);
  void apply_sdg(unsigned q);
  /// diag(1, phase).
  void apply_phase(unsigned q, Amplitude phase);
  /// Arbitrary 2x2 unitary [[u00,u01],[u10,u11]].
  void apply_single(unsigned q, Amplitude u00, Amplitude u01, Amplitude u10,
                    Amplitude u11);

  // --- two-qubit gates -----------------------------------------------------
  void apply_cnot(unsigned control, unsigned target);
  void apply_cz(unsigned a, unsigned b);
  void apply_swap(unsigned a, unsigned b);

  // --- multi-controlled gates (pattern controls) ---------------------------
  /// X on `target` conditioned on every ControlTerm holding.
  void apply_mcx(std::span<const ControlTerm> controls, unsigned target);
  /// Phase flip (-1) on basis states satisfying every ControlTerm.
  void apply_mcz(std::span<const ControlTerm> controls);

  // --- structured operators used by the paper's procedure A3 ---------------
  /// Hadamard on each qubit in [first, first+count): the paper's U_k when
  /// applied to the index register.
  void apply_h_range(unsigned first, unsigned count);

  /// The paper's S_k on the index register [first, first+count):
  ///   |i> -> -|i| for i != 0, |0> -> |0>   (i.e. 2|0><0| - I on that range).
  void apply_reflect_zero(unsigned first, unsigned count);

  /// Diagonal +-1 oracle given explicitly by its marked set: negates the
  /// amplitude of every listed basis state. Cost O(|marked|).
  void apply_phase_flip_set(std::span<const std::uint64_t> marked);

  /// Fast path for V_x driven by one input bit: X on `target` conditioned on
  /// the index register [first, first+count) being exactly |index>. Touches
  /// 2^(num_qubits - count - 1) amplitude pairs; with the full index register
  /// as control this is O(remaining qubits' subspace) = O(1) for A3.
  void apply_x_on_index(unsigned first, unsigned count, std::uint64_t index,
                        unsigned target);

  /// Fast path for W_y: phase flip conditioned on index register == |index>
  /// AND qubit `h` == 1.
  void apply_z_on_index(unsigned first, unsigned count, std::uint64_t index,
                        unsigned h);

  /// Fast path for R_y: X on `target` conditioned on index register ==
  /// |index> AND qubit `h` == 1.
  void apply_cx_on_index(unsigned first, unsigned count, std::uint64_t index,
                         unsigned h, unsigned target);

  // --- measurement / inspection --------------------------------------------
  /// P[measuring qubit q yields 1].
  double probability_one(unsigned q) const;

  /// Projective measurement of qubit q in the computational basis; collapses
  /// and renormalizes the state. Returns the outcome.
  bool measure(unsigned q, util::Rng& rng);

  /// Samples a full computational-basis measurement without collapsing.
  std::size_t sample_basis(util::Rng& rng) const;

  /// L2 norm of the state (should be 1 up to rounding; tested invariant).
  double norm() const;

  /// <this|other>; both states must have equal dimension.
  Amplitude inner_product(const StateVector& other) const;

  /// |<this|other>|^2 — global-phase-insensitive agreement measure.
  double fidelity(const StateVector& other) const;

 private:
  template <typename Fn>
  void for_pairs(unsigned q, Fn&& fn);

  unsigned num_qubits_;
  std::vector<Amplitude> amps_;
};

}  // namespace qols::quantum
