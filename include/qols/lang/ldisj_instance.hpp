#pragma once
// Instances of the paper's total language (Definition 3.3):
//
//   L_DISJ = { 1^k # (x#y#x#)^{2^k} : k >= 1, x,y in {0,1}^{2^{2k}},
//              DISJ_{2^{2k}}(x, y) = 1 }
//
// where DISJ(x,y) = 1 iff no index i has x_i = y_i = 1. An instance is the
// triple (k, x, y); its input word streams x and y alternately 2^k = sqrt(m)
// times (m = 2^{2k}), which is exactly the number of rounds the BCW quantum
// protocol needs in the worst case.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "qols/stream/symbol_stream.hpp"
#include "qols/util/bitvec.hpp"
#include "qols/util/rng.hpp"

namespace qols::lang {

/// A structurally well-formed input (k, x, y). Membership in L_DISJ then
/// depends only on whether x and y intersect.
class LDisjInstance {
 public:
  /// Requires k in [1, 10] (m = 2^{2k} caps at ~1M bits; the streamed word
  /// caps at ~3.2 Gsymbols) and |x| = |y| = 2^{2k}.
  LDisjInstance(unsigned k, util::BitVec x, util::BitVec y);

  /// Random instance with DISJ(x, y) = 1 (a member of L_DISJ). Bits of x are
  /// uniform; bits of y are uniform on the complement of x's support.
  static LDisjInstance make_disjoint(unsigned k, util::Rng& rng);

  /// Random instance with exactly `t` common indices (t = 0 gives a member;
  /// t >= 1 gives a non-member). Requires t <= 2^{2k}.
  static LDisjInstance make_with_intersections(unsigned k, std::uint64_t t,
                                               util::Rng& rng);

  unsigned k() const noexcept { return k_; }
  /// m = 2^{2k}, the length of x and y.
  std::uint64_t m() const noexcept { return std::uint64_t{1} << (2 * k_); }
  /// sqrt(m) = 2^k, the number of (x#y#x#) repetitions.
  std::uint64_t repetitions() const noexcept { return std::uint64_t{1} << k_; }

  const util::BitVec& x() const noexcept { return x_; }
  const util::BitVec& y() const noexcept { return y_; }

  /// |{i : x_i = y_i = 1}|.
  std::uint64_t intersections() const { return x_.and_popcount(y_); }
  /// True iff the streamed word belongs to L_DISJ.
  bool member() const { return intersections() == 0; }

  /// Total length of the streamed word: k + 1 + 2^k * 3 * (m + 1).
  std::uint64_t word_length() const noexcept;

  /// Lazy one-way stream of the word 1^k#(x#y#x#)^{2^k}. The stream holds
  /// only a reference-counted copy of (x, y) — never the expanded word.
  std::unique_ptr<stream::SymbolStream> stream() const;

  /// Materializes the full word (small k only; guarded against > 64 MiB).
  std::string render() const;

  /// Absolute stream position of `offset` within block `block` (0 = x,
  /// 1 = y, 2 = z) of repetition `rep` (0-based). offset == m addresses the
  /// block's trailing '#'.
  std::uint64_t position_of(std::uint64_t rep, unsigned block,
                            std::uint64_t offset) const noexcept;

 private:
  unsigned k_;
  util::BitVec x_;
  util::BitVec y_;
};

/// Ways to break a well-formed word, for failure-injection tests. The first
/// two violate shape condition (i) (procedure A1 must reject); the next two
/// violate consistency (ii)/(iii) (procedure A2 must reject with high
/// probability); the last two are tape-level damage.
enum class MutantKind {
  kBadPrefix,        ///< prefix '1^k' corrupted (a '0' before the first '#')
  kTrailingGarbage,  ///< extra symbols after the final '#'
  kXZMismatch,       ///< one bit of a z-block flipped (x != z in some repetition)
  kYDrift,           ///< one bit of a later y-block flipped (y changes between reps)
  kTruncated,        ///< stream ends mid-word
  kSepInsideBlock,   ///< a data bit replaced by '#'
};

/// Wraps the instance's stream so it produces the mutated word. The mutation
/// site is chosen from `rng` (never repetition 0 for drift mutants, so the
/// damage is genuinely "later in the stream").
std::unique_ptr<stream::SymbolStream> make_mutant_stream(
    const LDisjInstance& inst, MutantKind kind, util::Rng& rng);

/// Offline reference oracle: full (non-streaming) check of membership in
/// L_DISJ of an arbitrary word over {0,1,#}. Ground truth for tests.
bool is_member_reference(const std::string& word);

}  // namespace qols::lang
