#pragma once
// Procedure A1 (proof of Theorem 3.4): a deterministic streaming check of
// shape condition (i) — the word is exactly
//
//   1^k # b_1 # b_2 # ... # b_{3*2^k} #      with each b_j in {0,1}^{2^{2k}}
//
// using O(k) = O(log n) bits of work memory: a prefix counter for k, a block
// counter up to 3*2^k, and an in-block position counter up to 2^{2k}. The
// validator never buffers input.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

#include "qols/stream/symbol_stream.hpp"
#include "qols/util/serde.hpp"

namespace qols::lang {

class StructureValidator {
 public:
  StructureValidator() = default;

  /// Consumes one symbol. Safe to call after failure (stays failed).
  void feed(stream::Symbol s);

  /// Consumes a run of symbols; identical end state to feeding them one by
  /// one. Runs of data bits inside a block advance the position counter in
  /// one step instead of 2^{2k} branches, so chunked ingestion makes A1
  /// nearly free.
  void feed_chunk(std::span<const stream::Symbol> chunk);

  /// Declares end of input and returns the verdict: true iff the consumed
  /// word satisfied shape condition (i) exactly.
  bool finish();

  /// True once the word can no longer satisfy (i), regardless of what
  /// follows. (Callers may keep feeding; the flag is sticky.)
  bool failed() const noexcept { return failed_; }

  /// k, available once the prefix '1^k#' has been consumed.
  std::optional<unsigned> k() const noexcept {
    return k_known_ ? std::optional<unsigned>(k_) : std::nullopt;
  }

  /// 0-based index of the block currently being read (x=0, y=1, z=2 of
  /// repetition blocks_done()/3), defined while parsing the body.
  std::uint64_t blocks_done() const noexcept { return blocks_done_; }

  /// Work-memory footprint in bits, per the accounting in DESIGN.md:
  /// prefix/k counter + block counter (k+2 bits) + position counter (2k+1
  /// bits) + 2 control-state bits. Grows with k; callable any time.
  std::uint64_t classical_bits_used() const noexcept;

  /// Serializes the full mid-stream state (recognizer snapshot/restore).
  /// A restored validator is indistinguishable from the snapshotted one.
  void snapshot_to(util::serde::ByteWriter& w) const;
  void restore_from(util::serde::ByteReader& r);

 private:
  enum class Phase : std::uint8_t { kPrefix, kBlock, kFailed, kDone };

  // The largest k this implementation supports; counters are 64-bit so the
  // word length 2^{3k+2} must fit, and the library-wide instance guard is 10.
  static constexpr unsigned kMaxK = 20;

  Phase phase_ = Phase::kPrefix;
  bool failed_ = false;
  bool k_known_ = false;
  unsigned k_ = 0;
  std::uint64_t m_ = 0;             // 2^{2k}
  std::uint64_t total_blocks_ = 0;  // 3 * 2^k
  std::uint64_t blocks_done_ = 0;
  std::uint64_t pos_in_block_ = 0;

  void fail() noexcept {
    failed_ = true;
    phase_ = Phase::kFailed;
  }
};

}  // namespace qols::lang
