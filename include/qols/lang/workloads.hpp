#pragma once
// Adversarial and structured workload families for robustness experiments.
//
// Theorem 3.4's guarantees are worst-case over (x, y), but measured error
// rates can hide structure sensitivity. These generators place the
// intersection and shape the densities adversarially:
//   - first/last index intersections (stress stream positions),
//   - block-boundary intersections (stress the classical block machine's
//     window logic — the index right at a 2^k window edge),
//   - density extremes (all-ones x against a single y bit and vice versa),
//   - clustered intersections (all t witnesses inside one block).
// The E17 bench sweeps the quantum machine (and the classical baselines in
// its tests) across every family.

#include <cstdint>
#include <string>
#include <vector>

#include "qols/lang/ldisj_instance.hpp"

namespace qols::lang {

enum class WorkloadFamily {
  kUniformDisjoint,       ///< random member
  kFirstIndex,            ///< single intersection at index 0
  kLastIndex,             ///< single intersection at index m-1
  kBlockBoundary,         ///< intersection at a 2^k window edge
  kDenseXSparseY,         ///< x = all ones, y = a single bit
  kSparseXDenseY,         ///< x = a single bit, y = all ones
  kClusteredIntersections ///< several witnesses packed into one 2^k block
};

/// All families, for sweeps.
std::vector<WorkloadFamily> all_workload_families();

/// Human-readable family name for tables.
std::string workload_family_name(WorkloadFamily family);

/// True iff instances of the family belong to L_DISJ (are intersection-free).
bool workload_family_is_member(WorkloadFamily family);

/// Builds one instance of the family at scale k. Randomness only shapes the
/// non-essential background bits.
LDisjInstance make_workload_instance(WorkloadFamily family, unsigned k,
                                     util::Rng& rng);

}  // namespace qols::lang
