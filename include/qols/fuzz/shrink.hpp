#pragma once
// Greedy failure minimization. Given a failing case and a "does it still
// fail?" predicate, repeatedly tries simplifying transformations — dropping
// failure-injection wrappers, collapsing the chunk schedule, decrementing
// the session count, lowering k, and binary-searching the realized word
// length via the truncate_len knob — keeping each candidate only if the
// failure survives. The result is the smallest case the greedy walk reaches
// within its attempt budget, which is what qols_fuzz prints as the repro
// token (the original token is reported alongside it).

#include <cstddef>
#include <functional>

#include "qols/fuzz/fuzz_case.hpp"

namespace qols::fuzz {

struct ShrinkOutcome {
  FuzzCase best;             ///< smallest still-failing case found
  std::size_t attempts = 0;  ///< predicate evaluations spent
  std::size_t improved = 0;  ///< candidates that kept the failure
};

/// Minimizes `failing` under `still_fails` (which must be true for the input
/// itself; the function asserts nothing and simply returns the input
/// unchanged if the very first candidates all pass). Deterministic.
ShrinkOutcome shrink(const FuzzCase& failing,
                     const std::function<bool(const FuzzCase&)>& still_fails,
                     std::size_t max_attempts = 256);

}  // namespace qols::fuzz
