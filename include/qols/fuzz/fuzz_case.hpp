#pragma once
// Seeded case generation for the differential fuzzing subsystem.
//
// A FuzzCase is everything one property check needs, drawn deterministically
// from a single 64-bit seed: a word over {0,1,#} (member, planted
// intersection, one of the six mutant classes, structurally malformed junk,
// or a boundary-length fixture), an optional stack of failure-injection
// stream wrappers, a chunking schedule, a session count for the serving-layer
// check, and a full RecognizerSpec. Every field is explicit — not re-derived
// from the seed at check time — so a shrunk case (smaller word, simpler
// schedule, fewer sessions) serializes to the same compact repro token as a
// freshly generated one and replays bit-identically.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "qols/service/recognizer_service.hpp"
#include "qols/stream/symbol_stream.hpp"

namespace qols::fuzz {

/// Word families the generator draws from. The family records *intent*; the
/// property layer classifies the realized word from scratch (wrappers can
/// turn a member into junk and occasionally vice versa).
enum class WordKind : unsigned {
  kMember = 0,     ///< LDisjInstance::make_disjoint
  kIntersecting,   ///< make_with_intersections(t = word_param)
  kMutant,         ///< make_mutant_stream(MutantKind = word_param)
  kMalformed,      ///< word_param random symbols, no grammar at all
  kBoundary,       ///< fixture word_param from kBoundaryWords
};
inline constexpr unsigned kWordKindCount = 5;
const char* word_kind_name(WordKind kind);

/// Tiny fixed words that sit on parser boundaries (empty input, bare
/// prefixes, the shortest member, off-by-one shapes).
const std::vector<std::string>& boundary_words();

/// How the chunked transport slices the word.
enum class ScheduleKind : unsigned {
  kWhole = 0,  ///< one feed_chunk over the entire word
  kFixed,      ///< fixed chunk size (1 + chunk mod word length)
  kRagged,     ///< seeded random sizes in [1, ~97]
};
inline constexpr unsigned kScheduleKindCount = 3;

/// One failure-injection wrapper in the stack. Parameters are raw 64-bit
/// draws, reduced modulo the wrapped stream's length when the stack is
/// built, so they stay meaningful as shrinking changes the word.
struct WrapperOp {
  enum class Kind : unsigned { kTruncate = 0, kCorrupt, kAppend };
  Kind kind = Kind::kTruncate;
  std::uint64_t a = 0;  ///< truncate keep / corrupt position / append length
  std::uint64_t b = 0;  ///< corrupt replacement / append content seed

  bool operator==(const WrapperOp&) const = default;
};
inline constexpr unsigned kWrapperKindCount = 3;
inline constexpr std::size_t kMaxWrappers = 3;

inline constexpr std::uint64_t kNoTruncate = ~std::uint64_t{0};
inline constexpr unsigned kMaxSessions = 4;
/// Sentinel for snapshot_cut: the case skips the snapshot/resume property.
inline constexpr std::uint64_t kNoSnapshot = ~std::uint64_t{0};
/// Sentinel for wire_split: the case skips the frame-level wire property.
inline constexpr std::uint64_t kNoWire = ~std::uint64_t{0};
/// Sentinel for crash_point: the case skips the crash/recovery property.
inline constexpr std::uint64_t kNoCrash = ~std::uint64_t{0};
/// Sentinel for migrate_step: the crash case (if any) skips the migration
/// detour before the checkpoint.
inline constexpr std::uint64_t kNoMigrate = ~std::uint64_t{0};

/// A fully explicit fuzz case. `seed` still matters at realization time: it
/// drives the instance bits, mutation sites, malformed content, ragged
/// schedule sizes and the per-session recognizer seeds.
struct FuzzCase {
  std::uint64_t seed = 1;
  unsigned k = 2;                        ///< instance scale, [1, 4]
  WordKind word = WordKind::kMember;
  std::uint64_t word_param = 0;          ///< t / MutantKind / length / index
  std::vector<WrapperOp> wrappers;       ///< innermost first, <= kMaxWrappers
  std::uint64_t truncate_len = kNoTruncate;  ///< shrink knob: outermost cut
  ScheduleKind schedule = ScheduleKind::kFixed;
  std::uint64_t chunk = 1;               ///< raw; reduced at expansion
  unsigned sessions = 1;                 ///< [1, kMaxSessions]
  service::RecognizerSpec spec;          ///< kind + parameters; backend empty
  /// Raw snapshot position for P7 (reduced mod word length + 1 at check
  /// time); kNoSnapshot = the case does not exercise snapshot/resume.
  std::uint64_t snapshot_cut = kNoSnapshot;
  /// Raw seed for P8, the frame-level wire differential: drives the ragged
  /// wire-byte split points and selects the corrupt-frame submodes (mod 8).
  /// kNoWire = the case does not exercise the server protocol layer.
  std::uint64_t wire_split = kNoWire;
  /// Raw crash position for P9 (reduced mod word length + 1 at check time):
  /// the word is fed to a DURABLE service up to the cut, the service
  /// checkpoints with persist() and dies, a fresh service recover()s from
  /// the manifest and finishes the word. kNoCrash = skip P9.
  std::uint64_t crash_point = kNoCrash;
  /// Raw cross-shard migration target for P9 (reduced mod shard count): the
  /// session is migrate()d right before the checkpoint, so recovery also
  /// proves migrated placement survives a restart. kNoMigrate = no detour.
  std::uint64_t migrate_step = kNoMigrate;

  /// Draws a full case from one seed (the generator's distribution: ~80%
  /// classical recognizers, quantum capped at k <= 3, most words small).
  static FuzzCase from_seed(std::uint64_t seed);
};

/// Builds the case's complete stream stack: base word stream, then each
/// wrapper innermost-first, then the truncate_len cut (when set). Two builds
/// of the same case produce streams yielding identical symbol sequences.
std::unique_ptr<stream::SymbolStream> build_stream(const FuzzCase& c);

/// Drains build_stream(c) via next(); the word every recognizer check feeds.
std::vector<stream::Symbol> realize_word(const FuzzCase& c);

/// Expands the chunking schedule into concrete chunk sizes summing to
/// word_len (empty when word_len == 0).
std::vector<std::size_t> expand_schedule(const FuzzCase& c,
                                         std::size_t word_len);

/// Recognizer seed of `session` (0 = the case's primary run). Derived from
/// the case seed so service sessions and their single-stream references use
/// identical seeds.
std::uint64_t recognizer_seed(const FuzzCase& c, unsigned session);

/// One-line human description ("k=2 member rec=classical-block ...").
std::string describe(const FuzzCase& c);

}  // namespace qols::fuzz
