#pragma once
// The oracle + metamorphic property layer: what it means for one FuzzCase to
// "pass". One check_case() call asserts every cross-layer invariant the
// repo's four ingestion/serving layers promise, restricted to what each
// machine actually guarantees per run:
//
//   P1 stream-transport : draining the wrapper stack via next() and via
//                         next_chunk() yields the same symbol sequence.
//   P2 chunk-invariance : feeding the word per symbol and via the case's
//                         chunk schedule gives identical decision,
//                         fully_simulated flag and SpaceReport.
//   P3 exact oracle     : the realized word is classified by an offline
//                         reference parser; deterministic guarantees
//                         (members accepted by block/full/sampling and the
//                         simulated quantum machine; shape violations
//                         rejected by everyone; well-formed intersecting
//                         words rejected by block/full/bloom) must hold.
//                         Consistency violations are only caught w.h.p., so
//                         they carry no per-run assertion.
//   P4 backend equality : quantum cases re-run on the dense AND structured
//                         backends with the same seed; decisions and
//                         simulation status must match exactly.
//   P5 service identity : the word served through RecognizerService —
//                         interleaved with sessions-1 sibling sessions on
//                         ragged per-session chunks — must produce verdicts
//                         bit-identical to each session's single-stream run.
//   P6 precision        : quantum cases re-run with double AND float
//                         amplitudes on the same seed; decision, simulation
//                         status and SpaceReport must match exactly (the
//                         float mode's headline guarantee — amplitudes may
//                         round, verdicts may not).
//   P7 snapshot-resume  : the word is fed up to a seeded cut, the recognizer
//                         is frozen with snapshot(), restored into a FRESH
//                         instance built from a different seed, and fed the
//                         rest; the outcome must equal the straight run bit
//                         for bit (proving restore() overwrites every bit of
//                         state, construction seed included — the contract
//                         RecognizerService::evict/revive rides on).
//                         UnsupportedSnapshot is an honest refusal only for
//                         gate-level quantum modes, which the fuzzer never
//                         generates, so here it is a failure.
//   P8 wire-identity    : the P5 session script is encoded into wire frames
//                         (HELLO / OPEN / ragged interleaved FEEDs / STATS /
//                         FINISH), delivered to the server's FrameDecoder +
//                         SessionBroker at fuzzer-chosen ragged byte splits,
//                         and every verdict must equal the session's direct
//                         single-stream run bit for bit. Two corrupt
//                         submodes smash a length prefix or a FEED symbol
//                         byte and demand a typed kMalformedFrame error and
//                         a closed connection — never a crash.
//   P9 crash-recovery   : the word is fed to a DURABLE RecognizerService up
//                         to a seeded cut (optionally migrate()d across
//                         shards first), the service checkpoints with
//                         persist() and is destroyed — the crash — and a
//                         fresh service recover()s the session from the
//                         manifest + spill in the same directory, feeds the
//                         rest and finishes. The interrupted run's verdict
//                         must equal the straight-through single-stream run
//                         bit for bit (the restart-resume contract the
//                         durable session table promises).

#include <cstddef>
#include <string>
#include <vector>

#include "qols/fuzz/fuzz_case.hpp"
#include "qols/stream/symbol_stream.hpp"

namespace qols::fuzz {

/// Exact classification of an arbitrary word over {0,1,#} against L_DISJ's
/// grammar, mirroring StructureValidator (A1) for shape and the block
/// equalities/disjointness for the rest.
enum class WordClass : unsigned {
  kShapeViolation = 0,  ///< condition (i) broken — A1 rejects with certainty
  kInconsistent,        ///< shape OK, but some block differs from x(1)/y(1)
  kIntersecting,        ///< shape + consistency OK, x and y intersect
  kMember,              ///< in L_DISJ
};
inline constexpr unsigned kWordClassCount = 4;
const char* word_class_name(WordClass cls);

/// Offline reference classifier. O(|w|) time, exact; ground truth for the
/// oracle properties (classify_word(w) == kMember iff is_member_reference).
WordClass classify_word(const std::vector<stream::Symbol>& w);

/// One property violation found while checking a case.
struct Discrepancy {
  std::string property;  ///< "P1-stream-transport", "P3-oracle", ...
  std::string detail;    ///< human-readable mismatch description
};

struct CaseResult {
  WordClass cls = WordClass::kShapeViolation;
  std::size_t word_len = 0;
  std::vector<Discrepancy> issues;

  bool ok() const noexcept { return issues.empty(); }
};

/// Runs every applicable property for the case. Deterministic: two calls on
/// equal cases return identical results (the replay guarantee).
CaseResult check_case(const FuzzCase& c);

}  // namespace qols::fuzz
