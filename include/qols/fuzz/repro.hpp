#pragma once
// Compact repro tokens: every FuzzCase — freshly drawn or shrunk —
// serializes to one printable token that `qols_fuzz --replay <token>`
// re-checks bit-identically on any machine.
//
// Format (version "qf5", lowercase hex fields joined by '-'):
//
//   qf5-<seed>-<k>-<word>-<param>-<nwrap>{-<wkind>-<a>-<b>}*-<cut>
//      -<sched>-<chunk>-<sessions>-<rec>-<sbudget>-<bbits>-<bhashes>
//      -<float>-<snapcut>-<wire>-<crashcut>-<migrate>
//
// qf5 appended the trailing <crashcut> and <migrate> fields (the durable
// crash/recovery axis, P9); qf4 added <wire> (frame-level server, P8), qf3
// <snapcut> (snapshot/resume, P7), qf2 <float> (precision, P6). The field
// list is positional and versioned; decode rejects unknown versions
// (including qf1..qf4), malformed hex, out-of-range enums and wrong field
// counts with std::invalid_argument, so a token either replays the exact
// case or fails loudly — never a silently different one.

#include <string>

#include "qols/fuzz/fuzz_case.hpp"

namespace qols::fuzz {

/// Serializes the case. encode_token(decode_token(t)) == t for valid t.
std::string encode_token(const FuzzCase& c);

/// Parses a token back into the identical case. Throws std::invalid_argument
/// on anything that is not a well-formed qf5 token.
FuzzCase decode_token(const std::string& token);

}  // namespace qols::fuzz
