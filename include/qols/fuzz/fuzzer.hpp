#pragma once
// The soak driver: streams seeded cases through the property layer under a
// case-count and/or wall-clock budget, tallies coverage, and turns any
// property violation into a shrunk, replayable failure record. This is the
// engine under both the `qols_fuzz` CLI and experiment E21.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "qols/fuzz/fuzz_case.hpp"
#include "qols/fuzz/properties.hpp"

namespace qols::fuzz {

struct FuzzOptions {
  std::uint64_t seed = 1;        ///< master seed; case i draws from it
  std::uint64_t max_cases = 0;   ///< 0 = unbounded (then budget_seconds must be set)
  double budget_seconds = 0.0;   ///< 0 = unbounded (then max_cases must be set)
  bool shrink = true;            ///< minimize failures before reporting
  std::size_t shrink_attempts = 256;
  std::size_t max_failures = 4;  ///< stop the run after this many failures
  /// Force every quantum case onto the float-amplitude fast path (instead of
  /// the generator's ~50/50 draw). CI's sanitizer leg uses this to soak the
  /// float kernels specifically; P6 still cross-checks against double.
  bool force_float = false;
  /// Force every case to run the snapshot/resume property P7 (instead of
  /// the generator's ~50/50 draw), at the case's seeded cut position. CI's
  /// sanitizer leg uses this to soak the snapshot codecs specifically.
  bool force_snapshot = false;
  /// Force every case to run the frame-level wire property P8 (instead of
  /// the generator's ~50/50 draw), seeded from the case. CI's sanitizer leg
  /// uses this to soak the server frame decoder and broker specifically.
  bool force_wire = false;
  /// Force every case to run the crash/recovery property P9 (instead of the
  /// generator's ~50/50 draw), at the case's seeded cut. CI's restart leg
  /// uses this to soak the durable session table specifically.
  bool force_crash = false;
};

/// One property violation, with its replay tokens. `found` is the case as
/// drawn; `minimized` is the shrunk version (equal to `found` when shrinking
/// is disabled or could not improve).
struct FuzzFailure {
  FuzzCase found;
  FuzzCase minimized;
  std::string token;
  std::string minimized_token;
  std::string property;
  std::string detail;
};

struct FuzzReport {
  std::uint64_t cases = 0;
  double seconds = 0.0;
  std::array<std::uint64_t, kWordKindCount> by_word_kind{};
  std::array<std::uint64_t, kWordClassCount> by_word_class{};
  std::vector<FuzzFailure> failures;

  bool clean() const noexcept { return failures.empty(); }
  double cases_per_second() const noexcept {
    return seconds > 0.0 ? static_cast<double>(cases) / seconds : 0.0;
  }
};

/// Runs the soak. Throws std::invalid_argument when both budgets are 0
/// (an unbounded run is never what anyone wants from a library call).
FuzzReport run_fuzz(const FuzzOptions& opts);

}  // namespace qols::fuzz
