#pragma once
// One-way input streams over the paper's ternary alphabet {0, 1, #}.
//
// The whole point of online space complexity is that the input is read once,
// left to right, and is too large to store. SymbolStream models exactly the
// one-way input tape: a recognizer may only call next() and can never seek.
// Generator-backed implementations below produce the language's inputs
// lazily so experiments can stream inputs of hundreds of megabits while the
// process allocates only the recognizer's work memory.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

namespace qols::stream {

/// The paper's tape alphabet Sigma = {0, 1, #}.
enum class Symbol : std::uint8_t { kZero = 0, kOne = 1, kSep = 2 };

/// char <-> Symbol conversions ('0','1','#'); returns nullopt on anything else.
std::optional<Symbol> symbol_from_char(char c) noexcept;
char symbol_to_char(Symbol s) noexcept;

/// Abstract one-way input tape.
class SymbolStream {
 public:
  virtual ~SymbolStream() = default;
  /// Next symbol, or nullopt at end of input. Never rewinds.
  virtual std::optional<Symbol> next() = 0;
  /// Total length if known in advance (for reporting only; recognizers must
  /// not rely on it — the paper's machines never know |w| a priori).
  virtual std::optional<std::uint64_t> length_hint() const { return std::nullopt; }
};

/// Stream over an in-memory string of '0'/'1'/'#'. Throws std::invalid_argument
/// at construction if the string contains other characters.
class StringStream final : public SymbolStream {
 public:
  explicit StringStream(std::string text);
  std::optional<Symbol> next() override;
  std::optional<std::uint64_t> length_hint() const override {
    return text_.size();
  }

 private:
  std::string text_;
  std::size_t pos_ = 0;
};

/// Stream produced by a callable (index -> optional<Symbol>); the callable is
/// consulted with consecutive indices 0,1,2,... until it returns nullopt.
class GeneratorStream final : public SymbolStream {
 public:
  using Fn = std::function<std::optional<Symbol>(std::uint64_t)>;
  explicit GeneratorStream(Fn fn, std::optional<std::uint64_t> length = {})
      : fn_(std::move(fn)), length_(length) {}
  std::optional<Symbol> next() override {
    auto s = fn_(pos_);
    if (s) ++pos_;
    return s;
  }
  std::optional<std::uint64_t> length_hint() const override { return length_; }

 private:
  Fn fn_;
  std::uint64_t pos_ = 0;
  std::optional<std::uint64_t> length_;
};

/// Failure injection: cuts an underlying stream after `keep` symbols
/// (truncated inputs must be rejected by the structure validator).
class TruncatedStream final : public SymbolStream {
 public:
  TruncatedStream(std::unique_ptr<SymbolStream> inner, std::uint64_t keep)
      : inner_(std::move(inner)), remaining_(keep) {}
  std::optional<Symbol> next() override {
    if (remaining_ == 0) return std::nullopt;
    --remaining_;
    return inner_->next();
  }

 private:
  std::unique_ptr<SymbolStream> inner_;
  std::uint64_t remaining_;
};

/// Failure injection: replaces the symbol at absolute position `pos` with
/// `replacement` (models single-symbol corruption of a well-formed input).
class CorruptingStream final : public SymbolStream {
 public:
  CorruptingStream(std::unique_ptr<SymbolStream> inner, std::uint64_t pos,
                   Symbol replacement)
      : inner_(std::move(inner)), target_(pos), replacement_(replacement) {}
  std::optional<Symbol> next() override {
    auto s = inner_->next();
    if (s && cursor_++ == target_) s = replacement_;
    return s;
  }

 private:
  std::unique_ptr<SymbolStream> inner_;
  std::uint64_t cursor_ = 0;
  std::uint64_t target_;
  Symbol replacement_;
};

/// Appends extra symbols after an underlying stream ends (trailing-garbage
/// failure injection).
class AppendingStream final : public SymbolStream {
 public:
  AppendingStream(std::unique_ptr<SymbolStream> inner, std::string suffix);
  std::optional<Symbol> next() override;

 private:
  std::unique_ptr<SymbolStream> inner_;
  std::string suffix_;
  std::size_t suffix_pos_ = 0;
  bool inner_done_ = false;
};

/// Drains a stream into a std::string (tests/small inputs only).
std::string materialize(SymbolStream& stream);

}  // namespace qols::stream
