#pragma once
// One-way input streams over the paper's ternary alphabet {0, 1, #}.
//
// The whole point of online space complexity is that the input is read once,
// left to right, and is too large to store. SymbolStream models exactly the
// one-way input tape: a recognizer may only call next() and can never seek.
// Generator-backed implementations below produce the language's inputs
// lazily so experiments can stream inputs of hundreds of megabits while the
// process allocates only the recognizer's work memory.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>

namespace qols::stream {

/// The paper's tape alphabet Sigma = {0, 1, #}.
enum class Symbol : std::uint8_t { kZero = 0, kOne = 1, kSep = 2 };

/// char <-> Symbol conversions ('0','1','#'); returns nullopt on anything else.
std::optional<Symbol> symbol_from_char(char c) noexcept;
char symbol_to_char(Symbol s) noexcept;

/// Index of the first kSep in data[begin, end), or `end` when there is none.
/// The shared run-splitter of every bulk scanner: Symbol's underlying byte
/// values make this a memchr, so finding block boundaries costs a vectorized
/// scan instead of a branch per symbol.
inline std::size_t find_sep(const Symbol* data, std::size_t begin,
                            std::size_t end) noexcept {
  if (begin >= end) return end;
  const void* hit = std::memchr(data + begin, static_cast<int>(Symbol::kSep),
                                end - begin);
  return hit != nullptr
             ? static_cast<std::size_t>(static_cast<const Symbol*>(hit) - data)
             : end;
}

/// Abstract one-way input tape.
class SymbolStream {
 public:
  virtual ~SymbolStream() = default;
  /// Next symbol, or nullopt at end of input. Never rewinds.
  virtual std::optional<Symbol> next() = 0;
  /// Fills `out` with the next symbols and returns how many were written.
  /// Contract: a return of 0 with a non-empty `out` means end of input —
  /// implementations may return short counts mid-stream but must never
  /// return 0 transiently. Interleaves freely with next(): both advance the
  /// same cursor. The default loops next(); real streams override this with
  /// bulk production so the per-symbol virtual call vanishes from the
  /// ingestion hot path.
  virtual std::size_t next_chunk(std::span<Symbol> out) {
    std::size_t filled = 0;
    while (filled < out.size()) {
      auto s = next();
      if (!s) break;
      out[filled++] = *s;
    }
    return filled;
  }
  /// Zero-copy fast path: lends a read-only view of up to `max` symbols
  /// backed by the stream's own storage, advancing the same cursor as
  /// next()/next_chunk(). Three-way contract:
  ///   - nullopt: this stream cannot lend views (the default); callers fall
  ///     back to next_chunk() and need not ask again;
  ///   - engaged empty span: end of input;
  ///   - engaged non-empty span: borrowed symbols, valid only until the next
  ///     call on this stream.
  /// Only storage-backed streams (MappedFileStream) override this; wrappers
  /// deliberately do not, so failure injection always goes through the
  /// copying path it transforms.
  virtual std::optional<std::span<const Symbol>> view_chunk(std::size_t max) {
    (void)max;
    return std::nullopt;
  }
  /// Total length if known in advance (for reporting only; recognizers must
  /// not rely on it — the paper's machines never know |w| a priori).
  virtual std::optional<std::uint64_t> length_hint() const { return std::nullopt; }
};

/// Stream over an in-memory string of '0'/'1'/'#'. Throws std::invalid_argument
/// at construction if the string contains other characters.
class StringStream final : public SymbolStream {
 public:
  explicit StringStream(std::string text);
  std::optional<Symbol> next() override;
  /// Bulk path: one tight char->Symbol conversion loop (characters were
  /// validated at construction).
  std::size_t next_chunk(std::span<Symbol> out) override;
  std::optional<std::uint64_t> length_hint() const override {
    return text_.size();
  }

 private:
  std::string text_;
  std::size_t pos_ = 0;
};

/// Stream produced by a callable (index -> optional<Symbol>); the callable is
/// consulted with consecutive indices 0,1,2,... until it returns nullopt.
class GeneratorStream final : public SymbolStream {
 public:
  using Fn = std::function<std::optional<Symbol>(std::uint64_t)>;
  explicit GeneratorStream(Fn fn, std::optional<std::uint64_t> length = {})
      : fn_(std::move(fn)), length_(length) {}
  std::optional<Symbol> next() override {
    auto s = fn_(pos_);
    if (s) ++pos_;
    return s;
  }
  /// Bulk path: consults the callable back to back without the per-symbol
  /// virtual dispatch of the default implementation.
  std::size_t next_chunk(std::span<Symbol> out) override {
    std::size_t filled = 0;
    while (filled < out.size()) {
      auto s = fn_(pos_);
      if (!s) break;
      ++pos_;
      out[filled++] = *s;
    }
    return filled;
  }
  std::optional<std::uint64_t> length_hint() const override { return length_; }

 private:
  Fn fn_;
  std::uint64_t pos_ = 0;
  std::optional<std::uint64_t> length_;
};

/// Failure injection: cuts an underlying stream after `keep` symbols
/// (truncated inputs must be rejected by the structure validator).
class TruncatedStream final : public SymbolStream {
 public:
  TruncatedStream(std::unique_ptr<SymbolStream> inner, std::uint64_t keep)
      : inner_(std::move(inner)), keep_(keep), remaining_(keep) {}
  std::optional<Symbol> next() override {
    if (remaining_ == 0) return std::nullopt;
    --remaining_;
    return inner_->next();
  }
  /// Pass-through: clamps the request to the remaining budget, then lets the
  /// inner stream fill the chunk at its own line rate.
  std::size_t next_chunk(std::span<Symbol> out) override {
    const std::size_t want = remaining_ < out.size()
                                 ? static_cast<std::size_t>(remaining_)
                                 : out.size();
    if (want == 0) return 0;
    const std::size_t got = inner_->next_chunk(out.first(want));
    remaining_ -= got;
    return got;
  }
  /// min(keep, inner hint): truncation caps a known inner length; with no
  /// inner hint the true length is min(keep, unknown) — still unknown.
  std::optional<std::uint64_t> length_hint() const override {
    const auto inner = inner_->length_hint();
    if (!inner) return std::nullopt;
    return *inner < keep_ ? *inner : keep_;
  }

 private:
  std::unique_ptr<SymbolStream> inner_;
  std::uint64_t keep_;
  std::uint64_t remaining_;
};

/// Failure injection: replaces the symbol at absolute position `pos` with
/// `replacement` (models single-symbol corruption of a well-formed input).
class CorruptingStream final : public SymbolStream {
 public:
  CorruptingStream(std::unique_ptr<SymbolStream> inner, std::uint64_t pos,
                   Symbol replacement)
      : inner_(std::move(inner)), target_(pos), replacement_(replacement) {}
  std::optional<Symbol> next() override {
    auto s = inner_->next();
    if (s && cursor_++ == target_) s = replacement_;
    return s;
  }
  /// Pass-through: bulk-reads the inner stream and patches the one target
  /// position if it falls inside this chunk.
  std::size_t next_chunk(std::span<Symbol> out) override {
    const std::size_t got = inner_->next_chunk(out);
    if (target_ >= cursor_ && target_ - cursor_ < got) {
      out[static_cast<std::size_t>(target_ - cursor_)] = replacement_;
    }
    cursor_ += got;
    return got;
  }
  /// Corruption replaces one symbol in place; the length is the inner one.
  std::optional<std::uint64_t> length_hint() const override {
    return inner_->length_hint();
  }

 private:
  std::unique_ptr<SymbolStream> inner_;
  std::uint64_t cursor_ = 0;
  std::uint64_t target_;
  Symbol replacement_;
};

/// Appends extra symbols after an underlying stream ends (trailing-garbage
/// failure injection).
class AppendingStream final : public SymbolStream {
 public:
  AppendingStream(std::unique_ptr<SymbolStream> inner, std::string suffix);
  std::optional<Symbol> next() override;
  /// Pass-through: drains the inner stream in bulk, then serves the suffix.
  std::size_t next_chunk(std::span<Symbol> out) override;
  /// inner hint + |suffix| when the inner length is known.
  std::optional<std::uint64_t> length_hint() const override {
    const auto inner = inner_->length_hint();
    if (!inner) return std::nullopt;
    return *inner + suffix_.size();
  }

 private:
  std::unique_ptr<SymbolStream> inner_;
  std::string suffix_;
  std::size_t suffix_pos_ = 0;
  bool inner_done_ = false;
};

/// Drains a stream into a std::string (tests/small inputs only).
std::string materialize(SymbolStream& stream);

}  // namespace qols::stream
