#pragma once
// Disk-backed symbol streams: the "data from large databases" scenario of
// the introduction. Words are stored as plain '0'/'1'/'#' text files and
// streamed through a small read buffer, so a recognizer's host process can
// scan inputs far larger than RAM while allocating only its work memory.

#include <cstdint>
#include <fstream>
#include <string>

#include "qols/stream/symbol_stream.hpp"

namespace qols::stream {

/// One-way stream over a file of '0'/'1'/'#' characters. Foreign characters
/// terminate the stream and set bad(); a trailing newline is tolerated.
class FileStream final : public SymbolStream {
 public:
  /// Opens the file; throws std::runtime_error if it cannot be opened and
  /// std::invalid_argument when buffer_size is 0 (refill() could never make
  /// progress).
  explicit FileStream(const std::string& path, std::size_t buffer_size = 1 << 16);

  std::optional<Symbol> next() override;
  /// Bulk path: converts straight out of the read buffer, refilling as
  /// needed — disk streams feed chunked recognizers at line rate.
  std::size_t next_chunk(std::span<Symbol> out) override;
  std::optional<std::uint64_t> length_hint() const override;

  /// True if a character outside the alphabet was encountered.
  bool bad() const noexcept { return bad_; }

 private:
  bool refill();

  std::ifstream file_;
  std::uint64_t file_size_ = 0;
  std::string buffer_;
  std::size_t buffer_cap_;
  std::size_t pos_ = 0;
  bool bad_ = false;
  bool done_ = false;
};

/// Zero-copy stream over the same file format, backed by a private mmap of
/// the whole file instead of a read buffer. Symbols are converted from
/// characters *in place* inside the mapping (copy-on-write pages; the file
/// is never modified), so view_chunk() lends recognizers spans of the page
/// cache itself — ingestion moves no bytes. Consumed pages are periodically
/// returned to the OS (madvise), so resident memory stays bounded by the
/// release window, not the file size.
///
/// Semantics match FileStream exactly: foreign characters terminate the
/// stream and set bad(); one trailing newline at end of file is tolerated.
class MappedFileStream final : public SymbolStream {
 public:
  /// Opens and maps the file; throws std::runtime_error when it cannot be
  /// opened or mapped. An empty file maps nothing and streams nothing.
  explicit MappedFileStream(const std::string& path);
  ~MappedFileStream() override;

  MappedFileStream(const MappedFileStream&) = delete;
  MappedFileStream& operator=(const MappedFileStream&) = delete;

  std::optional<Symbol> next() override;
  std::size_t next_chunk(std::span<Symbol> out) override;
  /// The zero-copy path: a borrowed span of up to `max` symbols inside the
  /// mapping, valid until the next call on this stream.
  std::optional<std::span<const Symbol>> view_chunk(std::size_t max) override;
  std::optional<std::uint64_t> length_hint() const override;

  /// True if a character outside the alphabet was encountered.
  bool bad() const noexcept { return bad_; }

 private:
  /// Converts up to `max` raw characters at the cursor into Symbol bytes and
  /// returns how many converted symbols are ready to consume.
  std::size_t prepare(std::size_t max);
  /// Returns fully consumed pages to the OS once a release window's worth
  /// has accumulated behind the cursor.
  void release_behind();

  std::uint8_t* data_ = nullptr;  ///< mapping base (null for an empty file)
  std::size_t map_len_ = 0;       ///< bytes mapped
  std::size_t limit_ = 0;         ///< symbol end (shrinks at newline/foreign)
  std::size_t cursor_ = 0;        ///< next unconsumed symbol
  std::size_t converted_ = 0;     ///< bytes [0, converted_) are Symbol values
  std::size_t released_ = 0;      ///< bytes [0, released_) returned to the OS
  std::size_t page_size_ = 4096;
  bool bad_ = false;
};

/// Writes a symbol stream to a file (plain text, no trailing newline).
/// Returns the number of symbols written; throws on I/O failure.
std::uint64_t write_stream_to_file(SymbolStream& stream,
                                   const std::string& path);

}  // namespace qols::stream
