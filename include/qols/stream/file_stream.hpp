#pragma once
// Disk-backed symbol streams: the "data from large databases" scenario of
// the introduction. Words are stored as plain '0'/'1'/'#' text files and
// streamed through a small read buffer, so a recognizer's host process can
// scan inputs far larger than RAM while allocating only its work memory.

#include <cstdint>
#include <fstream>
#include <string>

#include "qols/stream/symbol_stream.hpp"

namespace qols::stream {

/// One-way stream over a file of '0'/'1'/'#' characters. Foreign characters
/// terminate the stream and set bad(); a trailing newline is tolerated.
class FileStream final : public SymbolStream {
 public:
  /// Opens the file; throws std::runtime_error if it cannot be opened.
  explicit FileStream(const std::string& path, std::size_t buffer_size = 1 << 16);

  std::optional<Symbol> next() override;
  /// Bulk path: converts straight out of the read buffer, refilling as
  /// needed — disk streams feed chunked recognizers at line rate.
  std::size_t next_chunk(std::span<Symbol> out) override;
  std::optional<std::uint64_t> length_hint() const override;

  /// True if a character outside the alphabet was encountered.
  bool bad() const noexcept { return bad_; }

 private:
  bool refill();

  std::ifstream file_;
  std::uint64_t file_size_ = 0;
  std::string buffer_;
  std::size_t buffer_cap_;
  std::size_t pos_ = 0;
  bool bad_ = false;
  bool done_ = false;
};

/// Writes a symbol stream to a file (plain text, no trailing newline).
/// Returns the number of symbols written; throws on I/O failure.
std::uint64_t write_stream_to_file(SymbolStream& stream,
                                   const std::string& path);

}  // namespace qols::stream
