#pragma once
// The paper's formal model, executable: an online (one-way) probabilistic
// Turing machine (Section 2.1).
//
// An OPTM has a finite control, a ONE-WAY read-only input tape over
// Sigma = {0, 1, #} and a read-write work tape over {0, 1, #, blank}. At
// each step the machine reads (control state, input symbol under the head,
// work symbol under the head), flips a fair coin, and performs the selected
// action: switch state, write a work symbol, move the work head left/right/
// stay, and optionally advance the input head (it can never move left).
// Acceptance = halting in an accepting state; rejection = halting elsewhere
// or exceeding the step budget (the "never halts" mode of rejection).
//
// The simulator meters exactly the quantities the paper's definitions use:
// work cells touched (space, Definition 2.1(iii)) and the configuration
// (state, head positions, work content — Fact 2.2). The census helpers at
// the bottom make Fact 2.2 checkable: enumerate reachable configurations
// and compare against n * s * |Sigma|^s * |Q|.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "qols/stream/symbol_stream.hpp"
#include "qols/util/rng.hpp"

namespace qols::machine {

/// Work-tape alphabet: the input alphabet plus the blank.
enum class WorkSym : std::uint8_t { kZero = 0, kOne = 1, kSep = 2, kBlank = 3 };

/// Input view: the three symbols plus end-of-input.
enum class InSym : std::uint8_t { kZero = 0, kOne = 1, kSep = 2, kEof = 3 };

/// Work-head movement.
enum class Move : std::int8_t { kLeft = -1, kStay = 0, kRight = 1 };

/// One transition outcome.
struct OptmAction {
  std::uint32_t next_state = 0;
  WorkSym write = WorkSym::kBlank;
  Move move = Move::kStay;
  bool advance_input = false;
  bool halt = false;
};

/// A complete OPTM program: transition table over
/// (state, input symbol, work symbol) -> {action on coin 0, action on coin 1}.
/// Omitted triples halt-and-reject. Deterministic machines set both actions
/// equal (set_transition does this for you).
class OptmProgram {
 public:
  explicit OptmProgram(std::uint32_t num_states);

  std::uint32_t num_states() const noexcept { return num_states_; }

  void set_start(std::uint32_t state);
  void set_accepting(std::uint32_t state, bool accepting = true);

  /// Deterministic transition (both coin outcomes identical).
  void set_transition(std::uint32_t state, InSym in, WorkSym work,
                      const OptmAction& action);
  /// Probabilistic transition (coin 0 / coin 1).
  void set_transition(std::uint32_t state, InSym in, WorkSym work,
                      const OptmAction& on_heads, const OptmAction& on_tails);

  std::uint32_t start_state() const noexcept { return start_; }
  bool is_accepting(std::uint32_t state) const noexcept;

  /// Transition lookup; nullopt = undefined (halt and reject).
  const std::pair<OptmAction, OptmAction>* lookup(std::uint32_t state, InSym in,
                                                  WorkSym work) const noexcept;

 private:
  static std::size_t key(std::uint32_t state, InSym in, WorkSym work) noexcept {
    return (static_cast<std::size_t>(state) * 4 +
            static_cast<std::size_t>(in)) *
               4 +
           static_cast<std::size_t>(work);
  }

  std::uint32_t num_states_;
  std::uint32_t start_ = 0;
  std::vector<bool> accepting_;
  std::vector<std::optional<std::pair<OptmAction, OptmAction>>> table_;
};

/// Outcome of one OPTM run.
struct OptmRun {
  bool accepted = false;
  bool halted = false;        ///< false = step budget exhausted ("runs forever")
  std::uint64_t steps = 0;
  std::uint64_t work_cells = 0;  ///< distinct work cells ever written (space)
  std::uint64_t coins = 0;       ///< coin flips consumed
};

/// Executes `program` on `input`. The work tape is unbounded to the right
/// (cells materialize on first touch); `max_steps` bounds runaway programs.
OptmRun run_optm(const OptmProgram& program, stream::SymbolStream& input,
                 util::Rng& rng, std::uint64_t max_steps = 1'000'000);

/// Monte-Carlo acceptance probability over independent runs.
double optm_acceptance_rate(const OptmProgram& program,
                            const std::string& input, std::uint64_t trials,
                            std::uint64_t seed,
                            std::uint64_t max_steps = 1'000'000);

/// Fact 2.2 census: runs the program on every word in `inputs` (all coin
/// paths explored breadth-first up to `max_coins` flips) and returns the
/// number of distinct configurations (state, input pos, work pos, work
/// content) seen with positive probability. Compare with
/// log2_configuration_bound.
std::uint64_t count_reachable_configurations(
    const OptmProgram& program, const std::vector<std::string>& inputs,
    std::uint64_t max_steps = 4096, unsigned max_coins = 12);

// --- ready-made example programs -------------------------------------------

/// Deterministic 2-state machine accepting words over {0,1} with an odd
/// number of 1s (uses no work tape: space 0).
OptmProgram make_parity_machine();

/// Deterministic machine accepting exactly the words u#u with u over {0,1}:
/// copies u to the work tape, rewinds, and compares. Space = |u| + O(1) —
/// a genuinely space-hungry machine for census experiments.
OptmProgram make_copy_compare_machine();

/// Probabilistic machine that ignores its input and accepts with
/// probability 1/2^flips (flips >= 1): a test fixture for the coin
/// semantics.
OptmProgram make_coin_machine(unsigned flips);

}  // namespace qols::machine
