#pragma once
// The online-machine abstraction shared by the quantum recognizer (Theorem
// 3.4) and every classical baseline (Proposition 3.7 and the small-space
// strategies of experiment E10).
//
// An OnlineRecognizer consumes the one-way input symbol by symbol and then
// commits to accept/reject. Its SpaceReport is the *conceptual* work-memory
// footprint of the machine it models — counters, fingerprints, buffers,
// qubits — not the footprint of the host process (the simulator may use
// scratch memory that a real machine would not, e.g. the dense state vector
// standing in for physical qubits).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "qols/stream/symbol_stream.hpp"
#include "qols/util/serde.hpp"

namespace qols::machine {

/// Thrown by snapshot()/restore() when a recognizer (or its configured mode,
/// e.g. gate-level lowering into an external sink) cannot round-trip its
/// state. The honest refusal: callers that need snapshots — session eviction,
/// fuzz property P7 — surface it instead of silently re-running the prefix.
class UnsupportedSnapshot : public std::logic_error {
 public:
  explicit UnsupportedSnapshot(const std::string& what)
      : std::logic_error("recognizer: unsupported snapshot: " + what) {}
};

/// Work-memory footprint of a recognizer, split per the paper's model:
/// classical work-tape bits and quantum register qubits.
struct SpaceReport {
  std::uint64_t classical_bits = 0;
  std::uint64_t qubits = 0;

  std::uint64_t total() const noexcept { return classical_bits + qubits; }
};

/// One-pass streaming decision procedure.
class OnlineRecognizer {
 public:
  virtual ~OnlineRecognizer() = default;

  /// Consumes the next input symbol.
  virtual void feed(stream::Symbol s) = 0;

  /// Consumes a run of consecutive input symbols. Semantically identical to
  /// feeding each symbol in order — same decisions, same SpaceReport, same
  /// RNG consumption — and freely interleavable with feed(). The default
  /// loops feed(); recognizers with a vectorizable hot path override it so
  /// the per-symbol virtual dispatch disappears from the ingestion loop.
  virtual void feed_chunk(std::span<const stream::Symbol> chunk) {
    for (const stream::Symbol s : chunk) feed(s);
  }

  /// Declares end of input; returns the accept/reject decision. May involve
  /// the machine's final coin flips / measurement. Call at most once per
  /// stream; reset() rearms the recognizer.
  virtual bool finish() = 0;

  /// Rearms for a fresh input with a fresh random seed.
  virtual void reset(std::uint64_t seed) = 0;

  /// Peak conceptual work memory used on the last input.
  virtual SpaceReport space_used() const = 0;

  /// Short human-readable identifier for tables ("quantum", "block", ...).
  virtual std::string name() const = 0;

  /// False when the machine's decision procedure could not actually be run
  /// on the last input (e.g. the quantum register exceeded every simulation
  /// backend's ceiling), so finish()'s value is a placeholder rather than
  /// the modeled machine's answer. Experiment drivers surface this count
  /// explicitly (ExperimentResult::not_simulated) instead of letting such
  /// trials pass as ordinary decisions.
  virtual bool fully_simulated() const { return true; }

  /// Serializes the complete mid-stream state — control fields, RNG streams,
  /// fingerprints, quantum registers — into a versioned byte buffer. The
  /// contract (fuzz property P7): restore() into a *fresh* recognizer of the
  /// same kind and configuration, then feed the remaining suffix; decision,
  /// fully_simulated() and space_used() are exactly what an uninterrupted
  /// run would have produced. Throws UnsupportedSnapshot when the state
  /// cannot be captured (default, and e.g. gate-level quantum mode).
  virtual std::vector<std::uint8_t> snapshot() const {
    throw UnsupportedSnapshot("snapshot (" + name() + ")");
  }

  /// Loads a snapshot() buffer, replacing this recognizer's entire state —
  /// including any construction-time seed. Throws util::serde::DecodeError
  /// on malformed bytes, wrong recognizer kind, or mismatched geometry.
  virtual void restore(std::span<const std::uint8_t> bytes) {
    (void)bytes;
    throw UnsupportedSnapshot("restore (" + name() + ")");
  }
};

/// Snapshot wire format: "QS" magic, format version, then a recognizer-kind
/// tag (1 = classical-block, 2 = classical-full, 3 = classical-sampling,
/// 4 = classical-bloom, 5 = quantum) followed by the kind-specific payload.
inline constexpr std::uint8_t kSnapshotMagic0 = 'Q';
inline constexpr std::uint8_t kSnapshotMagic1 = 'S';
inline constexpr std::uint8_t kSnapshotVersion = 1;

/// Writes the common snapshot header.
void snapshot_header(util::serde::ByteWriter& w, std::uint8_t kind_tag);

/// Validates magic, version and kind tag; throws util::serde::DecodeError
/// naming `who` on any mismatch.
void check_snapshot_header(util::serde::ByteReader& r, std::uint8_t kind_tag,
                           const char* who);

/// Symbols moved per transport hop by run_stream: large enough to amortize
/// the two virtual calls per hop, small enough to stay in L1 (4 KiB).
inline constexpr std::size_t kRunStreamChunk = 4096;

/// Streams `input` through `rec` (which must be freshly reset) and returns
/// the decision. Transport is chunked: symbols move in kRunStreamChunk-sized
/// spans (next_chunk -> feed_chunk), so the per-symbol cost is the
/// recognizers' actual work, not call dispatch. Decisions are bit-identical
/// to the historical per-symbol loop.
bool run_stream(stream::SymbolStream& input, OnlineRecognizer& rec);

/// Monte-Carlo acceptance probability over `trials` independent runs of the
/// recognizer on the same input stream factory.
struct AcceptanceStats {
  std::uint64_t trials = 0;
  std::uint64_t accepts = 0;
  double rate() const noexcept {
    return trials ? static_cast<double>(accepts) / static_cast<double>(trials)
                  : 0.0;
  }
};

template <typename StreamFactory>
[[deprecated(
    "use core::TrialEngine (qols/core/trial_engine.hpp) — the single "
    "Monte-Carlo trial path with pooled sharding and not-simulated "
    "accounting; this header-only loop will be removed next PR")]]
AcceptanceStats estimate_acceptance(StreamFactory&& make_stream,
                                    OnlineRecognizer& rec,
                                    std::uint64_t trials,
                                    std::uint64_t seed_base) {
  AcceptanceStats stats;
  stats.trials = trials;
  for (std::uint64_t i = 0; i < trials; ++i) {
    rec.reset(seed_base + i);
    auto s = make_stream();
    if (run_stream(*s, rec)) ++stats.accepts;
  }
  return stats;
}

/// Fact 2.2: log2 of the number of distinct configurations an OPTM with
/// |Sigma| tape symbols and |Q| control states can reach on inputs of length
/// n using s work-tape cells:  log2(n * s * |Sigma|^s * |Q|).
double log2_configuration_bound(double n, double s, double alphabet,
                                double states) noexcept;

}  // namespace qols::machine
