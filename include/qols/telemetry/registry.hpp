#pragma once
// The process-wide metrics registry: named, label-free instruments with two
// export formats.
//
//   - Registration is a mutex-guarded name lookup — COLD. Call sites
//     resolve their instruments once (a function-local static or a member
//     reference bound at construction) and record through the returned
//     reference forever after; the reference stays valid for the process
//     lifetime (the registry never deletes an instrument).
//   - Recording through a resolved reference is lock-free (see
//     instruments.hpp).
//
// Exports:
//   - snapshot(): a util::json::Value of every instrument, embedded by the
//     qols_bench JSON reporter as the document's `extra.telemetry` block
//     (schema qols-bench/4);
//   - render_prometheus(): text exposition (counter/gauge/histogram with
//     cumulative le-buckets) for the future network-facing server — the
//     /metrics endpoint is a render_prometheus call away.
//
// With telemetry compiled out (QOLS_TELEMETRY=OFF) the registry keeps its
// API but stores nothing: every lookup hands back one shared no-op
// instrument, snapshot() reports {"compiled": false}, and the exposition is
// a single comment line.

#include <iosfwd>
#include <string>
#include <string_view>

#include "qols/telemetry/instruments.hpp"
#include "qols/util/json.hpp"

#if QOLS_TELEMETRY_ENABLED
#include <map>
#include <memory>
#include <mutex>
#endif

namespace qols::telemetry {

class MetricsRegistry {
 public:
  /// The process-wide registry. Never destroyed (instrument references
  /// handed out to static call sites must outlive every other static).
  static MetricsRegistry& global();

  /// Finds or creates the named instrument. The same name always returns
  /// the same instrument; a name registered as one kind and requested as
  /// another throws std::invalid_argument (names are a flat shared space).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHistogram& histogram(std::string_view name);

  /// Zeroes every registered instrument (benchmark warmup discards, test
  /// isolation). Instruments stay registered; references stay valid.
  void reset_all();

  /// JSON view of every instrument: {"compiled", "enabled", "counters",
  /// "gauges", "histograms"} — histograms carry count/sum/mean/p50/p90/p99
  /// plus their non-empty [bound, count] buckets. Deterministic order
  /// (names sorted).
  util::json::Value snapshot() const;

  /// Prometheus text exposition of the same instruments. Names are
  /// sanitized ('.' and '-' become '_') and prefixed "qols_"; histograms
  /// render cumulative le-buckets plus _sum/_count.
  void render_prometheus(std::ostream& os) const;

#if QOLS_TELEMETRY_ENABLED

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_;
#else

 private:
  Counter counter_;
  Gauge gauge_;
  LatencyHistogram histogram_;
#endif
};

/// Shorthand for MetricsRegistry::global().snapshot() — the export the
/// bench reporter embeds.
util::json::Value snapshot();

/// Shorthand for MetricsRegistry::global().render_prometheus(os).
void render_prometheus(std::ostream& os);

/// A resolved profiling site: one invocation counter plus one nanosecond
/// histogram, looked up together ("<name>.calls", "<name>.ns"). Resolve
/// once per call site into a function-local static, then open a TraceSpan
/// per invocation.
struct SpanSite {
  Counter& calls;
  LatencyHistogram& ns;

  static SpanSite resolve(std::string_view name);
};

/// RAII profiling hook over a SpanSite: counts the call and times the
/// scope. Runtime-disabled cost: one branch (no clock read); compiled-out
/// cost: nothing.
class TraceSpan {
 public:
  explicit TraceSpan(SpanSite& site) noexcept : timer_(site.ns) {
    site.calls.add();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  ScopedTimer timer_;
};

}  // namespace qols::telemetry
