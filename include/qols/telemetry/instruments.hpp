#pragma once
// Telemetry instruments: the lock-free primitives every layer records into.
//
// Three instrument kinds, all safe for concurrent recording from pool
// workers (relaxed atomics; no instrument op ever takes a lock):
//
//   - Counter:          monotonic event/byte tallies;
//   - Gauge:            last-written level (queue depths, open sessions);
//   - LatencyHistogram: fixed-bucket log-scale (power-of-two) histogram
//                       with mergeable snapshots and p50/p90/p99 readout.
//
// Two kill switches, one contract:
//
//   - Compile time: the QOLS_TELEMETRY CMake option (default ON) defines
//     QOLS_TELEMETRY_ENABLED. When OFF, every class below becomes an empty
//     no-op shell — instrumented call sites compile unchanged and the
//     optimizer deletes them, so the instrumentation costs literally
//     nothing in that build.
//   - Runtime: set_enabled(false). Every record path first reads one
//     process-global relaxed atomic bool; when it is false the op returns
//     before touching memory or the clock — the disabled cost is one
//     predictable branch.
//
// The invariant both switches preserve (enforced by
// tests/test_telemetry_differential.cpp and the fuzz soak): telemetry only
// ever *observes*. No decision, RNG draw, SpaceReport, or snapshot byte
// depends on an instrument, so verdicts are bit-identical with telemetry
// on, runtime-disabled, or compiled out.

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>

#ifndef QOLS_TELEMETRY_ENABLED
#define QOLS_TELEMETRY_ENABLED 1
#endif

namespace qols::telemetry {

/// True when the library was built with QOLS_TELEMETRY=ON.
constexpr bool compiled() noexcept { return QOLS_TELEMETRY_ENABLED != 0; }

#if QOLS_TELEMETRY_ENABLED

namespace detail {
inline std::atomic<bool>& enabled_flag() noexcept {
  // Recording defaults to ON: observability is the production posture and
  // the enabled overhead is bounded by experiment E24 (<= 5%).
  static std::atomic<bool> flag{true};
  return flag;
}
}  // namespace detail

/// The runtime switch every record path checks first (relaxed load).
inline bool enabled() noexcept {
  return detail::enabled_flag().load(std::memory_order_relaxed);
}
/// Flips recording at runtime. Instruments keep their accumulated values;
/// they simply stop (or resume) moving.
inline void set_enabled(bool on) noexcept {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

#else  // telemetry compiled out

inline bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}

#endif

/// Monotonic event counter.
class Counter {
 public:
#if QOLS_TELEMETRY_ENABLED
  void add(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
#else
  void add(std::uint64_t = 1) noexcept {}
  std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
#endif
};

/// Last-written level (may go down: queue depths, resident sessions).
class Gauge {
 public:
#if QOLS_TELEMETRY_ENABLED
  void set(std::int64_t v) noexcept {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    if (!enabled()) return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
#else
  void set(std::int64_t) noexcept {}
  void add(std::int64_t) noexcept {}
  std::int64_t value() const noexcept { return 0; }
  void reset() noexcept {}
#endif
};

/// Bucket layout shared by the histogram and its snapshots: bucket 0 holds
/// the value 0, bucket i (i >= 1) holds [2^(i-1), 2^i - 1]. 65 buckets
/// cover the whole uint64 range, so record() never clamps or drops.
inline constexpr unsigned kHistogramBuckets = 65;

/// Bucket index of a recorded value: 0 for 0, else bit_width(v).
constexpr unsigned histogram_bucket(std::uint64_t v) noexcept {
  return v == 0 ? 0u : static_cast<unsigned>(std::bit_width(v));
}

/// Inclusive upper bound of bucket i (the value quantiles report).
constexpr std::uint64_t histogram_bucket_bound(unsigned i) noexcept {
  if (i == 0) return 0;
  if (i >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << i) - 1;
}

/// A point-in-time copy of a histogram: plain integers, mergeable,
/// quantile-extractable. Merging is associative and commutative
/// (element-wise sums), so per-shard histograms fold into fleet views in
/// any order.
struct HistogramSnapshot {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  void merge(const HistogramSnapshot& other) noexcept {
    for (unsigned i = 0; i < kHistogramBuckets; ++i) {
      buckets[i] += other.buckets[i];
    }
    count += other.count;
    sum += other.sum;
  }

  /// The bucket upper bound containing rank ceil(q * count), q in (0, 1].
  /// Exact whenever every value in that bucket equals its bound (e.g. when
  /// inputs are bucket boundaries — the unit-test contract); otherwise it
  /// over-reports by at most the bucket width (< 2x for the log-2 layout).
  std::uint64_t quantile(double q) const noexcept {
    if (count == 0) return 0;
    if (q <= 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(count));
    if (static_cast<double>(rank) < q * static_cast<double>(count)) ++rank;
    if (rank == 0) rank = 1;
    std::uint64_t cum = 0;
    for (unsigned i = 0; i < kHistogramBuckets; ++i) {
      cum += buckets[i];
      if (cum >= rank) return histogram_bucket_bound(i);
    }
    return histogram_bucket_bound(kHistogramBuckets - 1);
  }

  std::uint64_t p50() const noexcept { return quantile(0.50); }
  std::uint64_t p90() const noexcept { return quantile(0.90); }
  std::uint64_t p99() const noexcept { return quantile(0.99); }

  double mean() const noexcept {
    return count == 0
               ? 0.0
               : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Lock-free log-scale latency/size histogram. record() is two relaxed
/// fetch_adds; snapshot() reads the buckets without stopping writers (its
/// count is derived from the bucket sums, so a snapshot is internally
/// consistent bucket-wise even mid-record; `sum` may trail by in-flight
/// records — quiesce before asserting exact equality).
class LatencyHistogram {
 public:
#if QOLS_TELEMETRY_ENABLED
  void record(std::uint64_t value) noexcept {
    if (!enabled()) return;
    buckets_[histogram_bucket(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const noexcept {
    HistogramSnapshot s;
    for (unsigned i = 0; i < kHistogramBuckets; ++i) {
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
      s.count += s.buckets[i];
    }
    s.sum = sum_.load(std::memory_order_relaxed);
    return s;
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
#else
  void record(std::uint64_t) noexcept {}
  HistogramSnapshot snapshot() const noexcept { return {}; }
  void reset() noexcept {}
#endif
};

/// RAII nanosecond timer into a histogram. The enabled() decision is taken
/// once at construction — a scope that starts disabled never reads the
/// clock, so the runtime-disabled cost of a timed region is one branch.
class ScopedTimer {
 public:
#if QOLS_TELEMETRY_ENABLED
  explicit ScopedTimer(LatencyHistogram& hist) noexcept
      : hist_(enabled() ? &hist : nullptr) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (hist_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    hist_->record(ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
  }

 private:
  LatencyHistogram* hist_;
  std::chrono::steady_clock::time_point start_{};
#else
  explicit ScopedTimer(LatencyHistogram&) noexcept {}
#endif

 public:
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

}  // namespace qols::telemetry
