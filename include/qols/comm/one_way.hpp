#pragma once
// Exact one-way communication complexity (deterministic case).
//
// A deterministic one-way protocol for f : {0,1}^m x {0,1}^m -> {0,1} with a
// c-bit message exists iff the rows of f's communication matrix (one row per
// Alice input x) take at most 2^c distinct values: Alice sends the row
// class, Bob evaluates his column. Hence
//
//     D1(f) = ceil(log2 #distinct rows).
//
// For Disjointness every pair of distinct supports is separated by a
// singleton y, so DISJ_m has 2^m distinct rows and D1(DISJ_m) = m, exactly —
// the deterministic shadow of Theorem 3.2's randomized Omega(m), and the
// quantity Theorem 3.6's reduction ultimately charges against machine
// configurations. Exhaustive and exact for m <= ~14 (2^m rows of 2^m bits).

#include <cstdint>
#include <functional>

namespace qols::comm {

/// f(x, y) over m-bit inputs given as a callable on packed integers.
using BooleanPredicate =
    std::function<bool(std::uint64_t x, std::uint64_t y)>;

/// Number of distinct rows of the 2^m x 2^m communication matrix of f.
/// Cost O(4^m) evaluations; m must be <= 14.
std::uint64_t distinct_rows(const BooleanPredicate& f, unsigned m);

/// D1(f) = ceil(log2 distinct_rows(f)): the exact deterministic one-way
/// communication complexity in bits.
unsigned one_way_det_cc(const BooleanPredicate& f, unsigned m);

/// Ready-made predicates.
bool disj_predicate(std::uint64_t x, std::uint64_t y);      ///< x & y == 0
bool eq_predicate(std::uint64_t x, std::uint64_t y);        ///< x == y
bool ip_predicate(std::uint64_t x, std::uint64_t y);        ///< parity of x & y
/// INDEX: Bob's input selects one of Alice's bits (uses y mod m as index).
bool index_predicate_m(std::uint64_t x, std::uint64_t y, unsigned m);

}  // namespace qols::comm
