#pragma once
// Two-party communication protocols for Disjointness and Equality.
//
// This module reproduces the communication-complexity side of the paper:
//   - Theorem 3.1 (Buhrman-Cleve-Wigderson): a quantum protocol for DISJ_m
//     costing O(sqrt(m) log m) qubits. We implement the Grover-based
//     register-passing protocol in the exact shape procedure A3 streams
//     (V_x by Alice, W_y by Bob, diffusion by Alice, final R_y and
//     measurement by Bob), over a metered simulated quantum channel.
//   - Theorem 3.2 (Kalyanasundaram-Schnitger / Razborov): R(DISJ_m) =
//     Omega(m). A lower bound cannot be executed, so the classical side
//     fields the protocols that exist: the trivial m-bit protocol (correct,
//     cost Theta(m)) and a sublinear sampling protocol whose measured error
//     shows why cheaper is not possible.
//   - The O(log m) fingerprint protocol for (non-)Equality used to justify
//     procedure A2 (Kushilevitz-Nisan Example 3.5 style).
//
// Every run returns its exact message ledger so the E7 bench can print
// qubits/bits/rounds side by side.

#include <cstdint>
#include <string>

#include "qols/util/bitvec.hpp"
#include "qols/util/rng.hpp"

namespace qols::comm {

/// Message ledger of one protocol execution.
struct CommCost {
  std::uint64_t classical_bits = 0;
  std::uint64_t qubits = 0;
  std::uint64_t messages = 0;  // one-way messages (a round trip counts as 2)

  void add_classical(std::uint64_t bits) {
    classical_bits += bits;
    ++messages;
  }
  void add_quantum(std::uint64_t q) {
    qubits += q;
    ++messages;
  }
};

/// Outcome of one DISJ protocol execution.
struct DisjOutcome {
  bool declared_disjoint = false;
  CommCost cost;
};

/// Alice sends all of x; Bob answers with the result bit. Always correct;
/// cost m + 1 bits — the shape the Omega(m) lower bound says is necessary.
DisjOutcome disj_trivial(const util::BitVec& x, const util::BitVec& y,
                         util::Rng& rng);

/// Alice sends `samples` random (index, bit) pairs of x's support; Bob
/// reports whether any collides with a 1 of y. One-sided (never wrongly
/// declares "intersecting"), but misses intersections with probability
/// about (1 - t/m)^samples — sublinear cost buys unbounded error.
DisjOutcome disj_sampling(const util::BitVec& x, const util::BitVec& y,
                          std::uint64_t samples, util::Rng& rng);

/// The BCW quantum protocol (one attempt, random iteration count drawn by
/// BBHT from {0,...,sqrt(m)-1}): register-passing Grover search over the
/// shared index space. Requires |x| = |y| = m a power of 4 (the language's
/// m = 2^{2k}). One-sided: disjoint inputs are NEVER declared intersecting;
/// intersecting inputs are caught with probability >= 1/4.
DisjOutcome disj_bcw_quantum(const util::BitVec& x, const util::BitVec& y,
                             util::Rng& rng);

/// `attempts` independent BCW runs; declares "intersecting" if any attempt
/// finds a witness. attempts = 4 reaches the 2/3 bounded-error threshold.
DisjOutcome disj_bcw_amplified(const util::BitVec& x, const util::BitVec& y,
                               unsigned attempts, util::Rng& rng);

/// Worst-case qubit cost formula for the BCW protocol at m = 2^{2k}:
/// (3 * 2^k + 2) register transfers of (2k + 2) qubits each.
std::uint64_t bcw_worst_case_qubits(unsigned k) noexcept;

/// Outcome of one EQ protocol execution.
struct EqOutcome {
  bool declared_equal = false;
  CommCost cost;
};

/// Fingerprint protocol for Equality: Alice sends (p, t, F_x(t)); Bob
/// compares with F_y(t). O(log m) bits; err probability < 2^{-2k} when
/// p in (2^{4k}, 2^{4k+1}) and |x| = 2^{2k} (one-sided: equal strings are
/// never declared unequal).
EqOutcome eq_fingerprint(const util::BitVec& x, const util::BitVec& y,
                         util::Rng& rng);

}  // namespace qols::comm
