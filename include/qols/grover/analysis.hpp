#pragma once
// Closed-form analysis of Grover search with an unknown number of solutions
// (Boyer, Brassard, Hoyer, Tapp 1998), as used in the proof of Theorem 3.4.
//
// With t marked items among N, let theta be the angle with
// sin^2(theta) = t/N, 0 < theta < pi/2. After j Grover iterations starting
// from the uniform superposition, measuring hits a marked item with
// probability sin^2((2j+1) theta). Averaged over j uniform in {0,...,M-1}:
//
//   P_avg = 1/2 - sin(4 M theta) / (4 M sin(2 theta))
//
// and P_avg >= 1/4 whenever M >= 1/sin(2 theta). The paper instantiates
// N = 2^{2k}, M = 2^k, where M = sqrt(N) >= 1/sin(2 theta) holds for every
// 1 <= t <= N-1, giving procedure A3's one-sided error bound of 1/4.

#include <cstdint>

namespace qols::grover {

/// theta with sin^2(theta) = t/N (requires 0 <= t <= N, N >= 1).
double angle(std::uint64_t t, std::uint64_t n) noexcept;

/// P[measurement finds a marked item after j Grover iterations]
/// = sin^2((2j+1) theta).
double success_after(std::uint64_t j, double theta) noexcept;

/// Average of success_after(j, theta) for j uniform in {0,...,m_rounds-1}:
/// the closed form 1/2 - sin(4 m theta)/(4 m sin(2 theta)). Degenerate
/// cases: t=0 (theta=0) gives 0; t=N (theta=pi/2) gives the exact average of
/// sin^2((2j+1) pi/2) = 1.
double average_success(std::uint64_t m_rounds, double theta) noexcept;

/// Same, computed by explicit summation (test oracle for the closed form).
double average_success_by_sum(std::uint64_t m_rounds, double theta) noexcept;

/// The paper's A3 rejection probability on a shape-valid, consistent input
/// with t common indices: average_success(2^k, theta(t, 2^{2k})).
/// For 1 <= t <= 2^{2k} this is >= 1/4 (proved in Section 3.2; also covered
/// by a parameterized test sweep).
double a3_rejection_probability(unsigned k, std::uint64_t t) noexcept;

/// Smallest number of classical repetitions r such that one-sided error
/// (1 - p_reject)^r <= eps, given per-run rejection probability >= p_reject.
std::uint64_t repetitions_for_error(double p_reject, double eps) noexcept;

}  // namespace qols::grover
