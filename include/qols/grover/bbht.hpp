#pragma once
// The Boyer-Brassard-Hoyer-Tapp adaptive search (reference [8] of the
// paper): Grover search when the number of solutions t is UNKNOWN.
//
// The fixed-j variant embedded in procedure A3 draws j uniformly from
// {0,...,sqrt(N)-1} once — that is all the one-pass streaming model allows,
// and it yields the paper's one-sided 1/4 bound. The full BBHT algorithm,
// reproduced here on the simulator, instead grows a bound M geometrically
// (M <- lambda*M, lambda = 6/5), drawing j uniformly below M each round and
// measuring; it finds a solution in expected O(sqrt(N/t)) oracle calls and
// declares "none" after a sqrt(N)-scaled cutoff when t = 0.
//
// This module exists (a) as the executable form of the citation the proof
// leans on, and (b) for the E13 ablation: adaptive BBHT vs the streaming
// fixed-j compromise.

#include <cstdint>
#include <functional>

#include "qols/util/rng.hpp"

namespace qols::grover {

struct BbhtResult {
  bool found = false;
  std::uint64_t index = 0;         ///< a solution, when found
  std::uint64_t oracle_calls = 0;  ///< Grover iterations executed (quantum)
  std::uint64_t measurements = 0;  ///< register measurements performed
  std::uint64_t rounds = 0;        ///< outer loop rounds
};

/// Searches {0,...,n_items-1} for an index with oracle(index) == true, using
/// exact state-vector simulation of Grover iterations. n_items must be a
/// power of two (and >= 2); the oracle is also consulted classically to
/// verify measured candidates, as in the original algorithm.
BbhtResult bbht_search(std::uint64_t n_items,
                       const std::function<bool(std::uint64_t)>& oracle,
                       util::Rng& rng, double lambda = 6.0 / 5.0);

}  // namespace qols::grover
