#pragma once
// Exact compilation to the paper's universal set {H, T, CNOT}.
//
// Definition 2.3 requires the online machine to describe its whole quantum
// computation as a word over G = {G0=H, G1=T, G2=CNOT}. Every operator used
// by procedure A3 (V_x, W_y, R_y, S_k, U_k) is at the Clifford+Toffoli level,
// so the lowering here is *exact* — no Solovay-Kitaev approximation is ever
// needed:
//   T^2 = S, T^4 = Z, T^7 = T[dagger], H Z H = X,
//   CZ = (I (x) H) CNOT (I (x) H),
//   CCX = the standard 7-T / 6-CNOT / 2-H circuit,
//   n-controlled X = Toffoli ladder over n-1 clean ancillas,
//   S_k = 2|0><0| - I  =  (up to global phase) X^n . (n-controlled Z) . X^n.
//
// The builder emits into a GateSink so the same code path can (a) collect a
// Circuit for replay, (b) stream the a#b#c output tape symbol by symbol like
// the machine's one-way output tape, or (c) just count gates for the E12
// accounting at sizes where materializing the circuit would be wasteful.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "qols/quantum/circuit.hpp"

namespace qols::gates {

/// Receives compiled gates one at a time (the "output tape head").
class GateSink {
 public:
  virtual ~GateSink() = default;
  virtual void emit(const quantum::Gate& g) = 0;
};

/// Collects gates into a Circuit (replayable / serializable).
class CircuitSink final : public GateSink {
 public:
  void emit(const quantum::Gate& g) override { circuit_.add(g); }
  const quantum::Circuit& circuit() const noexcept { return circuit_; }
  quantum::Circuit take() { return std::move(circuit_); }

 private:
  quantum::Circuit circuit_;
};

/// Counts gates without storing them.
class CountingSink final : public GateSink {
 public:
  void emit(const quantum::Gate& g) override {
    ++total_;
    switch (g.kind) {
      case quantum::GateKind::kH: ++h_; break;
      case quantum::GateKind::kT: ++t_; break;
      case quantum::GateKind::kCnot: ++cnot_; break;
    }
  }
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t h() const noexcept { return h_; }
  std::uint64_t t() const noexcept { return t_; }
  std::uint64_t cnot() const noexcept { return cnot_; }

 private:
  std::uint64_t total_ = 0, h_ = 0, t_ = 0, cnot_ = 0;
};

/// Appends the paper's a#b#c encoding of each gate to a string, exactly as
/// the OPTM writes its one-way output tape.
class TapeWriterSink final : public GateSink {
 public:
  void emit(const quantum::Gate& g) override;
  const std::string& tape() const noexcept { return tape_; }

 private:
  std::string tape_;
};

/// Applies gates immediately to a StateVector (no buffering) — the "apply
/// the gates as soon as they are output" execution the paper describes.
class ApplySink final : public GateSink {
 public:
  explicit ApplySink(quantum::StateVector& state) : state_(state) {}
  void emit(const quantum::Gate& g) override { apply_gate(state_, g); }

 private:
  quantum::StateVector& state_;
};

/// Emits exact {H, T, CNOT} sequences for the derived gates above.
///
/// Qubit layout: the caller owns labels [0, data_qubits); the builder owns a
/// stack of ancilla labels [data_qubits, data_qubits + ancilla_budget), all
/// assumed |0> between public calls (every routine uncomputes what it
/// borrows). ancillas_high_water() reports the deepest use.
class CircuitBuilder {
 public:
  CircuitBuilder(GateSink& sink, unsigned data_qubits, unsigned ancilla_budget);

  // -- primitives (tape alphabet) --
  void h(unsigned q);
  void t(unsigned q);
  void cnot(unsigned c, unsigned t);

  // -- exact one-qubit derivations --
  void tdg(unsigned q);  ///< T^7
  void s(unsigned q);    ///< T^2
  void sdg(unsigned q);  ///< T^6
  void z(unsigned q);    ///< T^4
  void x(unsigned q);    ///< H T^4 H

  // -- exact multi-qubit derivations --
  void cz(unsigned a, unsigned b);
  void ccx(unsigned c1, unsigned c2, unsigned target);
  void ccz(unsigned c1, unsigned c2, unsigned c3);

  /// X on target controlled on every listed qubit being |1>. Uses a Toffoli
  /// ladder with max(0, n-1) clean ancillas for n >= 3 controls.
  void mcx(std::span<const unsigned> controls, unsigned target);

  /// Phase flip on the all-ones assignment of `qubits` (|1...1> -> -|1...1>).
  void mcz(std::span<const unsigned> qubits);

  /// X on target controlled on mixed-polarity terms (value==false controls
  /// are conjugated with X).
  void mcx_pattern(std::span<const quantum::ControlTerm> controls,
                   unsigned target);

  /// Phase flip on the basis assignment described by mixed-polarity terms.
  void mcz_pattern(std::span<const quantum::ControlTerm> controls);

  /// U_k: Hadamard on qubits [first, first+count).
  void h_range(unsigned first, unsigned count);

  /// S_k up to a global phase of -1: negates every basis state whose
  /// [first, first+count) register is nonzero. (Global phase is
  /// unobservable; tests compare states by fidelity.)
  void reflect_zero(unsigned first, unsigned count);

  unsigned data_qubits() const noexcept { return data_qubits_; }
  unsigned ancilla_budget() const noexcept { return ancilla_budget_; }
  /// Deepest simultaneous ancilla use so far.
  unsigned ancillas_high_water() const noexcept { return anc_high_water_; }
  std::uint64_t gates_emitted() const noexcept { return emitted_; }

 private:
  unsigned alloc_ancilla();
  void free_ancilla(unsigned label);
  void emit(quantum::GateKind kind, unsigned a, unsigned b);

  GateSink& sink_;
  unsigned data_qubits_;
  unsigned ancilla_budget_;
  unsigned anc_in_use_ = 0;
  unsigned anc_high_water_ = 0;
  std::uint64_t emitted_ = 0;
};

/// Ancillas needed by mcx/mcz_pattern with n control terms (ladder depth).
constexpr unsigned mcx_ancillas_needed(unsigned n_controls) noexcept {
  return n_controls >= 3 ? n_controls - 1 : 0;
}

}  // namespace qols::gates
