#pragma once
// Peephole optimization of {H, T, CNOT} tapes.
//
// The exact lowering of CircuitBuilder is deliberately local (each streamed
// input bit compiles independently), which leaves easy algebraic wins on the
// tape: T-runs collapse mod 8 (T^8 = I exactly, global-phase-free), H pairs
// on the same qubit cancel (no intervening gate touching it), and identical
// adjacent CNOTs annihilate. This module applies those EXACT identities —
// every rewrite preserves the circuit's unitary action literally, which the
// test suite asserts by state equality (not just fidelity).
//
// The ablation bench E15 measures how much of the machine's Definition 2.3
// output tape this recovers.

#include <cstdint>

#include "qols/quantum/circuit.hpp"

namespace qols::gates {

struct PeepholeStats {
  std::uint64_t gates_before = 0;
  std::uint64_t gates_after = 0;
  std::uint64_t identities_dropped = 0;   ///< a == b tape entries removed
  std::uint64_t h_pairs_cancelled = 0;    ///< HH -> I events
  std::uint64_t t_gates_cancelled = 0;    ///< T's removed by mod-8 folding
  std::uint64_t cnot_pairs_cancelled = 0; ///< CNOT,CNOT -> I events
  std::uint64_t passes = 0;               ///< fixpoint iterations

  double reduction() const noexcept {
    return gates_before == 0
               ? 0.0
               : 1.0 - static_cast<double>(gates_after) /
                           static_cast<double>(gates_before);
  }
};

/// Rewrites `input` to an equivalent, usually shorter, tape. Iterates the
/// rewrite rules to a fixpoint. The returned circuit computes exactly the
/// same unitary (no global-phase slack).
quantum::Circuit peephole_optimize(const quantum::Circuit& input,
                                   PeepholeStats* stats = nullptr);

}  // namespace qols::gates
