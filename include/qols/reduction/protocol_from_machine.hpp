#pragma once
// Theorem 3.6's conversion, executed literally as a two-party protocol.
//
// Alice holds x, Bob holds y. The word 1^k#(x#y#x#)^{2^k} decomposes into
// 3*2^k segments; each player can generate exactly the segments built from
// their own string. They simulate the online machine by turns: the owner of
// the next segment resumes the machine from the received configuration,
// feeds the segment, and sends the new configuration (step i is Bob's turn
// iff i = 2 mod 3, as in the proof). The final holder announces the
// machine's decision.
//
// With a deterministic machine this reproduces the machine's verdict
// EXACTLY while communicating only configurations — which is the entire
// content of the lower bound: if the machine is small, the messages are
// small, and a small-message one-way protocol for DISJ cannot exist.

#include <cstdint>

#include "qols/reduction/config_census.hpp"
#include "qols/util/bitvec.hpp"

namespace qols::reduction {

struct ReductionOutcome {
  bool declared_disjoint = false;
  std::uint64_t messages = 0;        ///< configurations sent (3*2^k - 1)
  std::uint64_t alice_messages = 0;  ///< steps with i != 2 (mod 3)
  std::uint64_t bob_messages = 0;    ///< steps with i == 2 (mod 3)
  /// Total payload if configurations are shipped verbatim (8 bits/char of
  /// the configuration serialization). The information-theoretic cost is
  /// the census's sum of ceil(log2 |C_i|) — see survey_configurations.
  std::uint64_t raw_payload_bits = 0;
};

/// Runs the protocol for parameter k on inputs x, y (|x| = |y| = 2^{2k}).
/// The machine is reset first and must be deterministic (every machine in
/// this module is).
ReductionOutcome run_reduction_protocol(EnumerableMachine& machine, unsigned k,
                                        const util::BitVec& x,
                                        const util::BitVec& y);

}  // namespace qols::reduction
