#pragma once
// Theorem 3.6 machinery: converting an online machine into a one-way
// communication protocol whose messages are machine configurations.
//
// The proof streams 1^k#(x#y#x#)^{2^k} through a (for this analysis,
// deterministic) online machine and snapshots its configuration at the
// 3*2^k - 1 block boundaries; Alice and Bob exchange exactly those
// configurations. The communication cost is sum_i ceil(log2 |C_i|), where
// C_i is the set of configurations reachable at boundary i across inputs.
// Because R(DISJ_m) = Omega(m), some boundary must carry Omega(2^{2k}/2^k)
// = Omega(2^k) bits, which by Fact 2.2 forces Omega(2^k) = Omega(n^{1/3})
// work space.
//
// This module measures |C_i| empirically: exactly for k = 1 (all 2^m x 2^m
// inputs) and by uniform sampling for larger k (sampling gives a lower
// bound on |C_i|, which is the informative direction for the argument).
//
// The machines surveyed are deterministic cores with serializable
// configurations (the randomized wrappers fix their coins to make the
// reduction well defined, exactly as the proof conditions on a coin-flip
// sequence).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "qols/stream/symbol_stream.hpp"
#include "qols/util/bitvec.hpp"
#include "qols/util/rng.hpp"

namespace qols::reduction {

/// A deterministic streaming machine with an observable configuration.
class EnumerableMachine {
 public:
  virtual ~EnumerableMachine() = default;
  virtual void reset() = 0;
  virtual void feed(stream::Symbol s) = 0;
  /// Serialized configuration (work-tape content + control state). Two
  /// machines in the same configuration must return equal digests.
  virtual std::string configuration() const = 0;
  /// Accept/reject decision at end of stream.
  virtual bool decide() = 0;
  virtual std::string name() const = 0;
};

/// Proposition 3.7's deterministic core: repetition i buffers block [x]_i
/// and matches it against [y]_i. Configuration = buffer + found-flag +
/// position counters.
class DetBlockMachine final : public EnumerableMachine {
 public:
  explicit DetBlockMachine(unsigned k);
  void reset() override;
  void feed(stream::Symbol s) override;
  std::string configuration() const override;
  bool decide() override;
  std::string name() const override { return "block"; }

 private:
  unsigned k_;
  std::uint64_t m_, block_len_;
  std::uint64_t rep_ = 0, off_ = 0;
  unsigned block_ = 0;
  bool body_ = false;
  util::BitVec buffer_;
  bool found_ = false;
};

/// Full-storage machine: remembers all of x(1). Configuration = x + flag.
class DetFullMachine final : public EnumerableMachine {
 public:
  explicit DetFullMachine(unsigned k);
  void reset() override;
  void feed(stream::Symbol s) override;
  std::string configuration() const override;
  bool decide() override;
  std::string name() const override { return "full"; }

 private:
  unsigned k_;
  std::uint64_t m_;
  std::uint64_t rep_ = 0, off_ = 0;
  unsigned block_ = 0;
  bool body_ = false;
  util::BitVec x_;
  bool found_ = false;
};

/// A2's fingerprint core with the coin t FIXED (the reduction conditions on
/// coins): configuration = a handful of field elements. Decides only
/// consistency, not disjointness — included to show how small the
/// configuration space of an O(log n)-space machine is.
class DetFingerprintMachine final : public EnumerableMachine {
 public:
  DetFingerprintMachine(unsigned k, std::uint64_t t);
  void reset() override;
  void feed(stream::Symbol s) override;
  std::string configuration() const override;
  bool decide() override;
  std::string name() const override { return "fingerprint"; }

 private:
  unsigned k_;
  std::uint64_t m_, p_, t_;
  std::uint64_t acc_ = 0, tpow_ = 1;
  std::uint64_t cur_x_ = 0, cur_y_ = 0, prev_x_ = 0, prev_y_ = 0;
  bool have_prev_ = false;
  std::uint64_t block_index_ = 0;
  bool body_ = false;
  bool failed_ = false;
};

/// Census of reachable configurations at every block boundary.
struct BoundaryCensus {
  /// distinct_configs[i] = |C_{i+1}| observed at boundary i (0-based; the
  /// boundaries are "after 1^k#x#", "after y#", "after x#", ...).
  std::vector<std::uint64_t> distinct_configs;
  /// Implied message lengths ceil(log2 |C_i|), and their sum (the one-way
  /// protocol's total communication).
  std::vector<std::uint64_t> message_bits;
  std::uint64_t total_bits = 0;
  std::uint64_t max_bits = 0;
  std::uint64_t inputs_surveyed = 0;
  bool exhaustive = false;
};

/// Runs the machine over input pairs (x, y) for parameter k and counts
/// distinct configurations at the 3*2^k - 1 boundaries. If 4^m <= max_pairs
/// (m = 2^{2k}) the survey is exhaustive; otherwise `max_pairs` uniform
/// pairs are sampled (census values are then lower bounds).
BoundaryCensus survey_configurations(EnumerableMachine& machine, unsigned k,
                                     std::uint64_t max_pairs, util::Rng& rng);

/// Theorem 3.6's prediction: with R(DISJ_m) >= c2k * m bits (c2k the
/// constant from Theorem 3.2) spread over 3*2^k - 1 messages, some message
/// carries at least c2k * 2^{2k} / (3*2^k - 1) bits.
double theorem36_min_message_bits(unsigned k, double disj_constant) noexcept;

}  // namespace qols::reduction
