#pragma once
// Pluggable quantum-simulation backends.
//
// GroverStreamer (procedure A3) talks to the quantum register through this
// interface instead of a concrete StateVector, so the same streamed gate
// schedule can run against
//   - DenseBackend: the exact 2^n-amplitude simulator (qols/quantum/
//     state_vector.hpp) — the reference semantics, feasible to 2k+2 <= 30
//     qubits;
//   - StructuredBackend: a symmetry-aware simulator that stores one
//     amplitude vector per *equivalence class* of index-register basis
//     states, making every A3 operation cost O(#classes) instead of
//     O(2^{2k}) and lifting the feasible k well past the dense wall.
//
// The operation set is exactly what A3 needs: the index-register preparation
// H^{x2k}, the per-symbol V_x/W_y/R_y fast paths, the U_k S_k U_k Grover
// diffusion (a single composite call so structured backends can apply
// 2|u><u| - I directly), pattern-controlled gates, last-qubit measurement
// and an amplitude/probability probe for differential testing.
//
// A backend that cannot represent the result of an operation throws
// UnsupportedOperation instead of silently computing the wrong state; the
// dense backend supports everything.

#include <complex>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

#include "qols/quantum/state_vector.hpp"
#include "qols/util/rng.hpp"
#include "qols/util/serde.hpp"

namespace qols::backend {

using quantum::Amplitude;
using quantum::ControlTerm;

/// Thrown when a backend is asked for an operation outside its representable
/// set (e.g. a Hadamard on one index-register qubit of the structured
/// backend). Indicates a driver bug or a backend/workload mismatch — never
/// thrown by DenseBackend.
class UnsupportedOperation : public std::logic_error {
 public:
  explicit UnsupportedOperation(const std::string& what)
      : std::logic_error("backend: unsupported operation: " + what) {}
};

/// Abstract quantum register: everything procedure A3 applies or observes.
/// Qubits are little-endian (qubit q is bit q of a basis index), matching
/// StateVector. The register starts in |0...0>.
class QuantumBackend {
 public:
  virtual ~QuantumBackend() = default;

  /// Registry id of the concrete backend ("dense", "structured").
  virtual std::string_view id() const noexcept = 0;

  /// Amplitude precision this instance simulates with. kDouble unless the
  /// backend was built with an explicit float request (dense only; the
  /// structured backend is double-only and ignores the request — see
  /// registry.cpp).
  virtual quantum::Precision precision() const noexcept {
    return quantum::Precision::kDouble;
  }

  virtual unsigned num_qubits() const noexcept = 0;

  /// Back to |0...0>.
  virtual void reset() = 0;

  // --- single-qubit gates --------------------------------------------------
  virtual void apply_h(unsigned q) = 0;
  virtual void apply_x(unsigned q) = 0;
  virtual void apply_z(unsigned q) = 0;

  // --- pattern-controlled gates --------------------------------------------
  /// X on `target` conditioned on every ControlTerm holding.
  virtual void apply_mcx(std::span<const ControlTerm> controls,
                         unsigned target) = 0;
  /// Phase flip (-1) on basis states satisfying every ControlTerm.
  virtual void apply_mcz(std::span<const ControlTerm> controls) = 0;

  // --- structured operators of procedure A3 --------------------------------
  /// Hadamard on each qubit in [first, first+count): U_k on the index
  /// register.
  virtual void apply_h_range(unsigned first, unsigned count) = 0;

  /// S_k on [first, first+count): |i> -> -|i> for i != 0, |0> -> |0>.
  virtual void apply_reflect_zero(unsigned first, unsigned count) = 0;

  /// The full Grover diffusion U_k S_k U_k = 2|u><u| - I on
  /// [first, first+count), exposed as one composite so symmetry-aware
  /// backends can apply it in O(#classes) without implementing a general
  /// mid-state Hadamard transform.
  virtual void apply_grover_diffusion(unsigned first, unsigned count) = 0;

  /// Diagonal +-1 oracle given by its marked set: negates the amplitude of
  /// every listed basis state (full-register basis indices).
  virtual void apply_phase_flip_set(std::span<const std::uint64_t> marked) = 0;

  /// V_x fast path: X on `target` conditioned on the index register
  /// [first, first+count) being exactly |index>.
  virtual void apply_x_on_index(unsigned first, unsigned count,
                                std::uint64_t index, unsigned target) = 0;

  /// W_y fast path: phase flip conditioned on index register == |index> AND
  /// qubit `h` == 1.
  virtual void apply_z_on_index(unsigned first, unsigned count,
                                std::uint64_t index, unsigned h) = 0;

  /// R_y fast path: X on `target` conditioned on index register == |index>
  /// AND qubit `h` == 1.
  virtual void apply_cx_on_index(unsigned first, unsigned count,
                                 std::uint64_t index, unsigned h,
                                 unsigned target) = 0;

  // --- snapshot / restore --------------------------------------------------
  /// Serializes the register for recognizer snapshot/restore. The payload is
  /// backend-specific; restore_state() on a freshly constructed backend of
  /// the same type, geometry and (for dense) precision reads it back
  /// bit-identically — amplitudes travel as raw IEEE bit patterns, never
  /// re-rounded. The defaults are the honest refusal: a backend that cannot
  /// round-trip its representation throws UnsupportedOperation instead of
  /// producing a lossy snapshot.
  virtual void serialize_state(util::serde::ByteWriter& w) const {
    (void)w;
    throw UnsupportedOperation("state serialization (" + std::string(id()) +
                               ")");
  }
  virtual void restore_state(util::serde::ByteReader& r) {
    (void)r;
    throw UnsupportedOperation("state restore (" + std::string(id()) + ")");
  }

  // --- measurement / probes ------------------------------------------------
  /// P[measuring qubit q yields 1].
  virtual double probability_one(unsigned q) const = 0;

  /// Projective measurement of qubit q; collapses and renormalizes. Draws
  /// exactly one uniform01() from `rng` (identical consumption across
  /// backends, so decisions are seed-for-seed comparable).
  virtual bool measure(unsigned q, util::Rng& rng) = 0;

  /// Amplitude of one computational basis state — the differential-testing
  /// probe. O(1) for the structured backend.
  virtual Amplitude amplitude(std::uint64_t basis) const = 0;

  /// L2 norm of the state (1 up to rounding; tested invariant).
  virtual double norm() const = 0;

  /// Escape hatch for dense-only consumers (gate-level replay comparisons):
  /// the underlying double-precision StateVector, or nullptr for non-dense
  /// backends AND for the float-precision dense backend (its register is not
  /// the double reference type; probe it through amplitude()).
  virtual const quantum::StateVector* dense_state() const noexcept {
    return nullptr;
  }
};

}  // namespace qols::backend
