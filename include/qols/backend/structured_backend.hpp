#pragma once
// StructuredBackend: symmetry-aware simulation of the A3 register.
//
// Representation. The register is split at construction into an *index
// register* of `index_width` qubits [0, w) — 2k qubits for A3 — and a small
// *tail* [w, n) — A3's oracle workspace h and result l. Throughout A3 the
// state always has the form
//
//   |psi> = sum_i |i> (x) v_{c(i)},     i in [0, 2^w),
//
// where v_c is a 2^{n-w}-dimensional tail vector shared by every index in
// equivalence class c: the uniform preparation makes all indices identical,
// each streamed oracle bit moves exactly one index between classes, and the
// diffusion 2|u><u| - I acts sector-wise (it never distinguishes indices
// inside a class). The backend stores one AmpClass per equivalence class:
// its shared tail-amplitude vector, its cardinality, and its membership —
// either an explicit hash set or the designated *rest* class holding the
// complement of every explicit set.
//
// Invariants (checked by tests/test_backend_structured.cpp):
//   I1  classes partition [0, 2^w): exactly one rest class; explicit member
//       sets are disjoint; counts sum to 2^w.
//   I2  amplitude(i | c << w) = classes[class_of(i)].amp[c] — the probe is
//       O(#classes).
//   I3  after every operation, no two classes carry bit-identical amplitude
//       vectors (coalesce() merges them), so #classes measures the true
//       symmetry of the state: a uniform state is 1 class, a Grover state
//       with t marked items is <= 2 + O(1) classes.
//
// Cost model. Per-symbol A3 oracles (V_x/W_y/R_y on one index) cost
// O(#classes) plus O(1) amortized hash updates; the Grover diffusion and
// measurement cost O(#classes * 2^{n-w}) — *independent of 2^{2k}*. Memory
// is O(#explicitly tracked indices), i.e. O(set bits streamed so far) when
// streaming and O(t) when driving whole Grover iterations through
// apply_phase_flip_set, which is what lets experiment E19 run k = 14..20
// (28-40 index qubits, a dense-infeasible 2^{30}..2^{42}-amplitude state).
//
// Operations that would break the class form (a Hadamard on a single index
// qubit, a partial index-pattern control, measuring an index qubit) throw
// UnsupportedOperation; A3 never needs them.

#include <cstdint>
#include <span>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "qols/backend/quantum_backend.hpp"

namespace qols::backend {

class StructuredBackend final : public QuantumBackend {
 public:
  /// |0...0> with index register [0, index_width) and tail
  /// [index_width, num_qubits). Requires 1 <= index_width < num_qubits,
  /// index_width <= 58 and a tail of at most 16 qubits.
  StructuredBackend(unsigned num_qubits, unsigned index_width);

  std::string_view id() const noexcept override { return "structured"; }
  unsigned num_qubits() const noexcept override { return num_qubits_; }
  unsigned index_width() const noexcept { return index_width_; }
  void reset() override;

  void apply_h(unsigned q) override;
  void apply_x(unsigned q) override;
  void apply_z(unsigned q) override;

  void apply_mcx(std::span<const ControlTerm> controls,
                 unsigned target) override;
  void apply_mcz(std::span<const ControlTerm> controls) override;

  void apply_h_range(unsigned first, unsigned count) override;
  void apply_reflect_zero(unsigned first, unsigned count) override;
  void apply_grover_diffusion(unsigned first, unsigned count) override;
  void apply_phase_flip_set(std::span<const std::uint64_t> marked) override;
  void apply_x_on_index(unsigned first, unsigned count, std::uint64_t index,
                        unsigned target) override;
  void apply_z_on_index(unsigned first, unsigned count, std::uint64_t index,
                        unsigned h) override;
  void apply_cx_on_index(unsigned first, unsigned count, std::uint64_t index,
                         unsigned h, unsigned target) override;

  /// Class-list serialization: per class the shared sector vector, count,
  /// rest flag and the member set (sorted, so snapshots of equal states are
  /// byte-identical regardless of hash-set iteration order).
  void serialize_state(util::serde::ByteWriter& w) const override;
  void restore_state(util::serde::ByteReader& r) override;

  double probability_one(unsigned q) const override;
  bool measure(unsigned q, util::Rng& rng) override;
  Amplitude amplitude(std::uint64_t basis) const override;
  double norm() const override;

  /// Number of amplitude classes right now (invariant I3 makes this the
  /// true symmetry count; the per-operation cost driver).
  std::size_t class_count() const noexcept { return classes_.size(); }
  /// High-water mark of class_count() since construction/reset.
  std::size_t peak_class_count() const noexcept { return peak_classes_; }
  /// Indices currently tracked explicitly (the memory driver).
  std::size_t explicit_index_count() const noexcept;

 private:
  struct AmpClass {
    std::vector<Amplitude> amp;  ///< 2^{tail} shared sector amplitudes
    std::uint64_t count = 0;     ///< indices in the class
    bool is_rest = false;        ///< complement of all explicit member sets
    std::unordered_set<std::uint64_t> members;  ///< empty iff is_rest
  };

  std::size_t find_class(std::uint64_t index) const;
  /// Splits `index` into a singleton class (no-op if already one) and
  /// returns its position in classes_.
  std::size_t isolate(std::uint64_t index);
  /// Restores invariant I3: merges identical-amplitude classes, drops empty
  /// ones.
  void coalesce();
  void require_full_index_range(unsigned first, unsigned count,
                                const char* op) const;
  /// Validates q is a tail qubit; returns its bit within a sector.
  unsigned tail_bit(unsigned q, const char* op) const;
  double sector_norm(const AmpClass& c) const;

  unsigned num_qubits_;
  unsigned index_width_;
  unsigned tail_width_;
  std::uint64_t index_size_;  ///< 2^{index_width}
  std::size_t sectors_;       ///< 2^{tail_width}
  std::vector<AmpClass> classes_;
  std::size_t peak_classes_ = 1;
};

}  // namespace qols::backend
