#pragma once
// String-keyed backend registry/factory.
//
// Backends are addressed by stable ids ("dense", "structured") everywhere a
// human or a config chooses one: GroverStreamer::Options::backend, the
// qols_bench --backend flag, and the QOLS_BACKEND environment override. The
// distinguished id "auto" (or an empty string) defers the choice to
// resolve_backend_id(), which picks the cheapest backend whose ceiling
// covers the instance's k — dense inside the dense wall, structured past it,
// "not simulated" beyond both.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "qols/backend/quantum_backend.hpp"

namespace qols::backend {

inline constexpr std::string_view kAutoBackendId = "auto";
inline constexpr std::string_view kDenseBackendId = "dense";
inline constexpr std::string_view kStructuredBackendId = "structured";

/// One registered backend: identity plus a constructor. `precision` is the
/// amplitude-scalar request (quantum::Precision): the dense factory honors
/// it by instantiating the float register; the structured factory is
/// double-only and ignores it (its per-class amplitudes are the exactness
/// anchor past the dense wall, and float would buy no memory there).
struct BackendFactory {
  std::string id;
  std::string description;
  /// Largest A3 depth k (data register 2k+2, index register 2k) the backend
  /// can instantiate at all, regardless of the caller's own ceilings —
  /// dense is memory-bound at k = 14 (30 qubits), structured is capped by
  /// 64-bit index arithmetic.
  unsigned hard_max_k;
  std::function<std::unique_ptr<QuantumBackend>(unsigned num_qubits,
                                                unsigned index_width,
                                                quantum::Precision precision)>
      create;
};

class BackendRegistry {
 public:
  void add(BackendFactory factory);

  const std::vector<BackendFactory>& factories() const noexcept {
    return factories_;
  }
  /// Exact id lookup; nullptr when absent ("auto" is not a factory).
  const BackendFactory* find(std::string_view id) const noexcept;
  std::vector<std::string> ids() const;

  /// The process-wide registry with dense + structured pre-registered.
  static BackendRegistry& global();

 private:
  std::vector<BackendFactory> factories_;
};

/// Constructs backend `id` from the global registry. Throws
/// std::invalid_argument on an unknown id (including "auto": resolve first).
/// `precision` defaults to the double reference mode; see BackendFactory for
/// which backends honor a float request.
std::unique_ptr<QuantumBackend> make_backend(
    std::string_view id, unsigned num_qubits, unsigned index_width,
    quantum::Precision precision = quantum::Precision::kDouble);

/// Backend selection for an A3 instance of depth k.
///   - explicit `requested` id: honored up to min(its caller ceiling, its
///     hard_max_k); nullopt past that ("not simulated");
///   - empty / "auto": dense while k <= max_dense_k, else structured while
///     k <= max_structured_k, else nullopt.
/// Caller ceilings are GroverStreamer's max_sim_k / max_structured_k knobs.
/// Throws std::invalid_argument if `requested` names an unknown backend.
std::optional<std::string> resolve_backend_id(std::string_view requested,
                                              unsigned k,
                                              unsigned max_dense_k,
                                              unsigned max_structured_k);

/// The QOLS_BACKEND environment override, read and validated once per
/// process: a registered id or "auto"; anything else warns on stderr and is
/// ignored. nullopt when unset/invalid.
const std::optional<std::string>& env_backend_override();

}  // namespace qols::backend
