#pragma once
// DenseBackend: the QuantumBackend adapter over the exact dense StateVector.
// Reference semantics for every other backend — the differential suite
// (tests/test_backend_differential.cpp) pins StructuredBackend against it.
//
// The adapter is a template on the amplitude scalar, mirroring
// quantum::StateVectorT: DenseBackend (double) is the reference; the float
// instantiation is the opt-in fast mode selected through
// quantum::Precision::kSingle at the factory (registry.hpp). Float-mode
// decisions match double exactly under the precision contract
// (docs/ARCHITECTURE.md); amplitudes carry per-gate-count rounding, which is
// why dense_state() — the double-reference escape hatch — returns nullptr
// for the float instantiation.
//
// Cost model: one-qubit gates and the diffusion are O(2^n); the A3 fast
// paths are O(2^{n - index width}); memory is 16 bytes * 2^n for double and
// 8 bytes * 2^n for float, which caps the feasible A3 depth at k ~ 10-14
// (2k+2 <= 30 qubits).

#include <cstdint>
#include <span>
#include <string_view>
#include <type_traits>
#include <vector>

#include "qols/backend/quantum_backend.hpp"
#include "qols/telemetry/registry.hpp"

namespace qols::backend {

template <typename Scalar>
class DenseBackendT final : public QuantumBackend {
 public:
  /// |0...0> on `num_qubits` (1..30; StateVector validates).
  explicit DenseBackendT(unsigned num_qubits) : state_(num_qubits) {}

  std::string_view id() const noexcept override { return "dense"; }
  quantum::Precision precision() const noexcept override {
    return std::is_same_v<Scalar, float> ? quantum::Precision::kSingle
                                         : quantum::Precision::kDouble;
  }
  unsigned num_qubits() const noexcept override {
    return state_.num_qubits();
  }
  void reset() override { state_.reset(); }

  void apply_h(unsigned q) override { state_.apply_h(q); }
  void apply_x(unsigned q) override { state_.apply_x(q); }
  void apply_z(unsigned q) override { state_.apply_z(q); }

  void apply_mcx(std::span<const ControlTerm> controls,
                 unsigned target) override {
    state_.apply_mcx(controls, target);
  }
  void apply_mcz(std::span<const ControlTerm> controls) override {
    state_.apply_mcz(controls);
  }

  void apply_h_range(unsigned first, unsigned count) override {
    state_.apply_h_range(first, count);
  }
  void apply_reflect_zero(unsigned first, unsigned count) override {
    state_.apply_reflect_zero(first, count);
  }
  void apply_grover_diffusion(unsigned first, unsigned count) override {
    static telemetry::SpanSite site =
        telemetry::SpanSite::resolve("quantum.diffusion");
    telemetry::TraceSpan span(site);
    // U_k S_k U_k expanded exactly as GroverStreamer historically applied
    // it, so dense results stay bit-identical to the pre-backend code.
    state_.apply_h_range(first, count);
    state_.apply_reflect_zero(first, count);
    state_.apply_h_range(first, count);
  }
  void apply_phase_flip_set(std::span<const std::uint64_t> marked) override {
    state_.apply_phase_flip_set(marked);
  }
  void apply_x_on_index(unsigned first, unsigned count, std::uint64_t index,
                        unsigned target) override {
    state_.apply_x_on_index(first, count, index, target);
  }
  void apply_z_on_index(unsigned first, unsigned count, std::uint64_t index,
                        unsigned h) override {
    state_.apply_z_on_index(first, count, index, h);
  }
  void apply_cx_on_index(unsigned first, unsigned count, std::uint64_t index,
                         unsigned h, unsigned target) override {
    state_.apply_cx_on_index(first, count, index, h, target);
  }

  void serialize_state(util::serde::ByteWriter& w) const override {
    w.u32(state_.num_qubits());
    for (const Scalar v : state_.re()) put_scalar(w, v);
    for (const Scalar v : state_.im()) put_scalar(w, v);
  }
  void restore_state(util::serde::ByteReader& r) override {
    if (r.u32() != state_.num_qubits()) {
      throw util::serde::DecodeError("dense backend: qubit count mismatch");
    }
    std::vector<Scalar> re(state_.dim());
    std::vector<Scalar> im(state_.dim());
    for (Scalar& v : re) v = get_scalar(r);
    for (Scalar& v : im) v = get_scalar(r);
    state_.load(std::move(re), std::move(im));
  }

  double probability_one(unsigned q) const override {
    return state_.probability_one(q);
  }
  bool measure(unsigned q, util::Rng& rng) override {
    return state_.measure(q, rng);
  }
  Amplitude amplitude(std::uint64_t basis) const override {
    return state_.amplitude(static_cast<std::size_t>(basis));
  }
  double norm() const override { return state_.norm(); }

  const quantum::StateVector* dense_state() const noexcept override {
    if constexpr (std::is_same_v<Scalar, double>) {
      return &state_;
    } else {
      return nullptr;  // float register is not the double reference type
    }
  }

  /// The typed register, for precision-aware consumers (tests).
  const quantum::StateVectorT<Scalar>& typed_state() const noexcept {
    return state_;
  }

 private:
  // Scalars travel as their own IEEE width: a float snapshot restored into a
  // float backend is bit-identical, and the width mismatch between modes is
  // caught by the payload-length check, never silently converted.
  static void put_scalar(util::serde::ByteWriter& w, Scalar v) {
    if constexpr (std::is_same_v<Scalar, double>) {
      w.f64(v);
    } else {
      w.f32(v);
    }
  }
  static Scalar get_scalar(util::serde::ByteReader& r) {
    if constexpr (std::is_same_v<Scalar, double>) {
      return r.f64();
    } else {
      return r.f32();
    }
  }

  quantum::StateVectorT<Scalar> state_;
};

/// The reference (double) adapter — the type the rest of the library names.
using DenseBackend = DenseBackendT<double>;
/// The opt-in float fast mode.
using DenseBackendF = DenseBackendT<float>;

}  // namespace qols::backend
